/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPoint is a named site planted in a failure-prone code path (IO
 * parsing, CSR build, each ordering run, Louvain phases, IMM rounds,
 * service admission/execution).  Armed via
 * `GRAPHORDER_FAULTS=io.metis.truncate:1,order.scheme:3` (fire on the
 * Nth hit of the named site) or programmatically (`arm_fault`), a site
 * throws a GraphorderError with its declared StatusCode exactly once —
 * the substrate for the fault-matrix tests proving every failure path
 * surfaces a typed error, and that `run_guarded` fallback always
 * recovers.
 *
 * Sustained-failure variants (for chaos tests of the reorder service,
 * where a one-shot fault is always healed by the first retry):
 * `site:*` fires on *every* hit and `site:N+` fires on every hit from
 * the Nth onward; neither disarms after firing.  Plain `site:N` keeps
 * its original fire-exactly-once semantics byte for byte.
 *
 * Disarmed cost: `maybe_fire()` is one relaxed atomic load and a
 * predictable branch — safe to leave in release hot paths at the round /
 * parse-line granularity the sites use.
 *
 * Sites are namespace-scope statics in their owning .cpp, so the full
 * registry is enumerable (`all_fault_points()`) as soon as the owning
 * translation units are linked, without executing any of them.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace graphorder {

namespace detail {
/** Number of currently armed fault points (process-global). */
extern std::atomic<int> g_armed_faults;
struct FaultPointAdmin; ///< registry-internal access to arm/disarm
} // namespace detail

/** True when at least one fault point is armed. */
inline bool
faults_armed()
{
    return detail::g_armed_faults.load(std::memory_order_relaxed) != 0;
}

/** One named injection site.  Construct at namespace scope only. */
class FaultPoint
{
  public:
    /**
     * Registers the site; applies any pending spec (env or arm_fault)
     * with a matching name.  @p code is the taxonomy category an
     * injected failure surfaces as.
     */
    FaultPoint(std::string name, StatusCode code, std::string description);

    const std::string& name() const { return name_; }
    StatusCode code() const { return code_; }
    const std::string& description() const { return description_; }

    /** Times the site was reached while fault injection was active
     *  (the disarmed fast path does not count hits). */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /**
     * The injection site.  Disarmed: one atomic load + branch.  Armed:
     * counts the hit and, on the configured Nth hit, fires by throwing
     * GraphorderError(code(), ...) — exactly once in one-shot mode,
     * on every qualifying hit in repeat mode (`site:*` / `site:N+`).
     */
    void maybe_fire()
    {
        if (!faults_armed())
            return;
        fire_slow();
    }

  private:
    friend struct detail::FaultPointAdmin;

    void fire_slow();
    void arm(std::uint64_t nth, bool repeat);
    void disarm();

    std::string name_;
    StatusCode code_;
    std::string description_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> fire_at_{0}; ///< 0 = disarmed
    std::atomic<bool> repeat_{false}; ///< fire on every hit >= fire_at_
    std::atomic<bool> fired_{false};
};

/** Every registered site, in registration order.  Never invalidated. */
const std::vector<FaultPoint*>& all_fault_points();

/** Lookup by exact name; nullptr when absent. */
FaultPoint* find_fault_point(const std::string& name);

/**
 * Arm @p name to fire on its @p nth hit counted from now (nth >= 1).
 * One-shot by default; with @p repeat the site fires on *every* hit
 * from the nth onward and never disarms itself (the `site:N+` /
 * `site:*` semantics).  Unknown names are remembered and applied if the
 * site registers later.
 * @throws GraphorderError(InvalidInput) when nth == 0.
 */
void arm_fault(const std::string& name, std::uint64_t nth,
               bool repeat = false);

/** Disarm every site and forget pending specs; hit counters keep. */
void clear_faults();

/**
 * Parse and apply a "name:SPEC,name:SPEC" list (the GRAPHORDER_FAULTS
 * format).  SPEC is `N` (fire exactly once, on the Nth hit), `N+` (fire
 * on every hit from the Nth onward) or `*` (every hit; same as `1+`).
 * @return number of entries applied.
 * @throws GraphorderError(InvalidInput) on malformed entries.
 */
std::size_t apply_fault_spec(const std::string& spec);

} // namespace graphorder
