#include "util/cancel.hpp"

#include <cstdio>

namespace graphorder {

namespace {

thread_local CancelToken* t_current_token = nullptr;

} // namespace

std::uint64_t
current_rss_bytes()
{
#ifdef __linux__
    // /proc/self/statm: "size resident shared ..." in pages.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    return static_cast<std::uint64_t>(resident) * 4096ULL;
#else
    return 0;
#endif
}

CancelToken::CancelToken(Budget budget)
    : start_(std::chrono::steady_clock::now()),
      deadline_ms_(budget.deadline_ms),
      mem_budget_bytes_(budget.mem_budget_bytes),
      rss_baseline_(budget.mem_budget_bytes ? current_rss_bytes() : 0)
{
}

double
CancelToken::elapsed_ms() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

Status
CancelToken::check(const char* site) const
{
    if (cancelled_.load(std::memory_order_relaxed))
        return Status(StatusCode::Cancelled,
                      std::string("cancelled at ") + site);
    if (deadline_ms_ > 0) {
        const double el = elapsed_ms();
        if (el > deadline_ms_)
            return Status(StatusCode::BudgetExceeded,
                          std::string("deadline exceeded at ") + site
                              + ": " + std::to_string(el) + " ms > "
                              + std::to_string(deadline_ms_) + " ms");
    }
    if (mem_budget_bytes_ > 0) {
        const std::uint64_t rss = current_rss_bytes();
        if (rss > 0 && rss > rss_baseline_
            && rss - rss_baseline_ > mem_budget_bytes_)
            return Status(
                StatusCode::BudgetExceeded,
                std::string("memory budget exceeded at ") + site + ": +"
                    + std::to_string((rss - rss_baseline_) >> 20)
                    + " MiB > "
                    + std::to_string(mem_budget_bytes_ >> 20) + " MiB");
    }
    return Status::ok();
}

void
CancelToken::poll(const char* site) const
{
    Status s = check(site);
    if (!s.is_ok())
        throw GraphorderError(std::move(s));
}

ScopedCancelToken::ScopedCancelToken(CancelToken& token)
    : prev_(t_current_token)
{
    t_current_token = &token;
}

ScopedCancelToken::~ScopedCancelToken()
{
    t_current_token = prev_;
}

CancelToken*
current_cancel_token()
{
    return t_current_token;
}

void
checkpoint(const char* site)
{
    if (CancelToken* t = t_current_token)
        t->poll(site);
}

ParallelCheckpoint::ParallelCheckpoint(const char* site)
    : site_(site), token_(t_current_token)
{
}

bool
ParallelCheckpoint::stop() const
{
    if (!token_)
        return false;
    if (stop_.load(std::memory_order_relaxed))
        return true;
    if (!token_->check(site_).is_ok()) {
        stop_.store(true, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ParallelCheckpoint::rethrow() const
{
    if (token_)
        token_->poll(site_);
}

} // namespace graphorder
