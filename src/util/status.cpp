#include "util/status.hpp"

namespace graphorder {

const char*
status_code_name(StatusCode c)
{
    switch (c) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidInput: return "invalid-input";
      case StatusCode::Truncated: return "truncated";
      case StatusCode::BudgetExceeded: return "budget-exceeded";
      case StatusCode::Cancelled: return "cancelled";
      case StatusCode::InvariantViolation: return "invariant-violation";
      case StatusCode::Internal: return "internal";
      case StatusCode::Overloaded: return "overloaded";
      case StatusCode::Unavailable: return "unavailable";
    }
    return "?";
}

int
exit_code_for(StatusCode c)
{
    switch (c) {
      case StatusCode::Ok:
        return 0;
      case StatusCode::InvalidInput:
      case StatusCode::Truncated:
        return 2;
      case StatusCode::BudgetExceeded:
      case StatusCode::Cancelled:
      // Overload and unavailability are transient resource pressure like
      // a blown budget: the caller's remedy is "retry later", so they
      // share exit 3 and the pre-existing codes keep their values.
      case StatusCode::Overloaded:
      case StatusCode::Unavailable:
        return 3;
      case StatusCode::InvariantViolation:
      case StatusCode::Internal:
        return 4;
    }
    return 4;
}

std::string
Status::to_string() const
{
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    if (!context_.empty()) {
        s += " (";
        for (std::size_t i = 0; i < context_.size(); ++i) {
            if (i)
                s += "; ";
            s += context_[i];
        }
        s += ")";
    }
    return s;
}

Status
status_from_current_exception()
{
    try {
        throw;
    } catch (const GraphorderError& e) {
        return e.status();
    } catch (const std::bad_alloc&) {
        return Status(StatusCode::BudgetExceeded, "allocation failed");
    } catch (const std::exception& e) {
        return Status(StatusCode::Internal, e.what());
    } catch (...) {
        return Status(StatusCode::Internal, "unknown exception");
    }
}

} // namespace graphorder
