/**
 * @file
 * Wall-clock timing utilities used by the instrumented application kernels
 * (Louvain iterations, IMM sampling) and the reordering-cost benchmarks.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace graphorder {

/** Monotonic stopwatch with lap support. */
class Timer
{
  public:
    using clock = std::chrono::steady_clock;

    /** Start (or restart) the stopwatch. */
    void start();

    /** Seconds elapsed since the last start(). */
    double elapsed_s() const;

    /** Milliseconds elapsed since the last start(). */
    double elapsed_ms() const;

    /** Record a lap: seconds since the previous lap (or start). */
    double lap_s();

  private:
    clock::time_point t0_{clock::now()};
    clock::time_point lap_{clock::now()};
};

/**
 * Accumulates named durations, e.g. per-iteration times of a Louvain phase.
 * Thread-safe only if each thread uses its own instance.
 */
class TimeSeries
{
  public:
    /** Append one observation (seconds). */
    void add(double seconds);

    std::size_t count() const { return samples_.size(); }
    double total() const;
    double mean() const;
    double min() const;
    double max() const;
    const std::vector<double>& samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace graphorder
