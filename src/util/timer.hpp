/**
 * @file
 * Wall-clock timing utilities used by the instrumented application kernels
 * (Louvain iterations, IMM sampling) and the reordering-cost benchmarks.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace graphorder {

/** Monotonic stopwatch with lap support. */
class Timer
{
  public:
    using clock = std::chrono::steady_clock;

    /** Start (or restart) the stopwatch. */
    void start();

    /** Seconds elapsed since the last start(). */
    double elapsed_s() const;

    /** Milliseconds elapsed since the last start(). */
    double elapsed_ms() const;

    /** Record a lap: seconds since the previous lap (or start). */
    double lap_s();

  private:
    clock::time_point t0_{clock::now()};
    clock::time_point lap_{clock::now()};
};

/**
 * Accumulates named durations, e.g. per-iteration times of a Louvain phase.
 * Thread-safe only if each thread uses its own instance.
 *
 * Empty-series contract: total(), mean(), min() and max() all return 0.0
 * when no sample has been added (never NaN, never garbage), so aggregate
 * rows for phases that ran zero iterations print as zeros instead of
 * poisoning downstream arithmetic.
 */
class TimeSeries
{
  public:
    /** Append one observation (seconds). */
    void add(double seconds);

    bool empty() const { return samples_.empty(); }
    std::size_t count() const { return samples_.size(); }
    /** Sum of samples; 0.0 when empty. */
    double total() const;
    /** Arithmetic mean; 0.0 when empty. */
    double mean() const;
    /** Smallest sample; 0.0 when empty. */
    double min() const;
    /** Largest sample; 0.0 when empty. */
    double max() const;
    const std::vector<double>& samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace graphorder
