/**
 * @file
 * Performance-profile construction (Dolan & Moré style), the presentation
 * device used by Figures 1, 4, 5, 6 and 7 of the paper.
 *
 * Given a matrix of costs c(s, p) for scheme s on problem p (lower is
 * better), the profile of scheme s is the cumulative distribution
 *
 *   rho_s(tau) = |{ p : c(s,p) <= tau * min_s' c(s',p) }| / #problems.
 *
 * A curve hugging the Y axis (rho high at small tau) means the scheme is at
 * or near the best on most problems.
 */
#pragma once

#include <string>
#include <vector>

namespace graphorder {

/** Cost table: one named scheme row across a set of named problems. */
struct ProfileInput
{
    std::vector<std::string> schemes;             ///< row labels
    std::vector<std::string> problems;            ///< column labels
    /** costs[s][p], lower is better; must be > 0 and finite. */
    std::vector<std::vector<double>> costs;
};

/** One scheme's profile curve, sampled at shared tau grid points. */
struct ProfileCurve
{
    std::string scheme;
    /** ratio-to-best for each problem, sorted ascending. */
    std::vector<double> ratios;
};

/** Result of building a performance profile. */
struct PerfProfile
{
    std::vector<ProfileCurve> curves;

    /**
     * Fraction of problems on which @p scheme_index is within factor
     * @p tau of the best scheme.
     */
    double fraction_within(std::size_t scheme_index, double tau) const;

    /** Maximum ratio-to-best over all schemes and problems. */
    double max_ratio() const;

    /**
     * Area over the profile (mean log2 ratio-to-best); 0 means always best,
     * bigger is worse.  Handy scalar for ranking schemes in tests.
     */
    double mean_log2_ratio(std::size_t scheme_index) const;

    /**
     * Render as CSV: header "scheme,tau...," then one row per scheme of
     * rho_s(tau) values sampled at @p taus.
     */
    std::string to_csv(const std::vector<double>& taus) const;
};

/**
 * Build a performance profile from a cost table.
 *
 * Costs equal to zero are clamped to @p epsilon so that ties at zero (e.g.
 * two schemes both achieving bandwidth 0 on a trivial graph) behave.
 */
PerfProfile build_profile(const ProfileInput& input, double epsilon = 1e-12);

/** Convenience: default tau sample grid 1, 1.25, 1.5, ..., up to limit. */
std::vector<double> default_tau_grid(double max_tau);

} // namespace graphorder
