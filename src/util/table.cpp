#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace graphorder {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    if (v != 0.0 && (std::abs(v) >= 1e6 || std::abs(v) < 1e-3))
        os << std::scientific << std::setprecision(2) << v;
    else
        os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::to_string() const
{
    // Column widths over header + all rows.
    std::size_t ncols = header_.size();
    for (const auto& r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<std::size_t> width(ncols, 0);
    auto account = [&](const std::vector<std::string>& r) {
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    };
    account(header_);
    for (const auto& r : rows_)
        account(r);

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& r) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << r[c];
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(to_string().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace graphorder
