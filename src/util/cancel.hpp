/**
 * @file
 * Cooperative cancellation with wall-clock and approximate memory
 * budgets.
 *
 * `run_guarded` (order/runner.hpp) installs a CancelToken for the
 * calling thread; long-running kernels poll it at natural round
 * boundaries via `checkpoint("site")` — Louvain iterations, Gorder
 * window events, SlashBurn rounds, MinLA-SA sweeps, IMM martingale
 * rounds.  With no token installed a checkpoint is a thread-local read
 * and a branch, so the polls are safe to leave in release builds.
 *
 * The memory budget is *approximate*: it compares the process RSS delta
 * since token creation (Linux /proc/self/statm; 0 elsewhere, disabling
 * the check) against the budget at each poll — good enough to stop a
 * scheme that is ballooning, not an allocator hook.
 *
 * Threading: the token pointer is thread-local, so checkpoints must sit
 * on the thread that installed the token (serial sections / OpenMP
 * master), not inside parallel-for bodies.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <atomic>

#include "util/status.hpp"

namespace graphorder {

/** Budgets + manual cancellation for one guarded run. */
class CancelToken
{
  public:
    struct Budget
    {
        double deadline_ms = 0;           ///< 0 = no deadline
        std::uint64_t mem_budget_bytes = 0; ///< 0 = no memory budget
    };

    explicit CancelToken(Budget budget);

    /** Request cooperative cancellation (safe from any thread). */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /**
     * Non-throwing check: Ok, or Cancelled / BudgetExceeded with a
     * message naming @p site and the blown budget.
     */
    Status check(const char* site) const;

    /** Throwing check: GraphorderError(check(site)) when not Ok. */
    void poll(const char* site) const;

    /** Milliseconds since the token was created. */
    double elapsed_ms() const;

  private:
    std::chrono::steady_clock::time_point start_;
    double deadline_ms_;
    std::uint64_t mem_budget_bytes_;
    std::uint64_t rss_baseline_;
    std::atomic<bool> cancelled_{false};
};

/**
 * Installs @p token as the calling thread's current token for the
 * scope; restores the previous one (tokens nest) on destruction.
 */
class ScopedCancelToken
{
  public:
    explicit ScopedCancelToken(CancelToken& token);
    ~ScopedCancelToken();
    ScopedCancelToken(const ScopedCancelToken&) = delete;
    ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

  private:
    CancelToken* prev_;
};

/** The calling thread's installed token; nullptr outside guarded runs. */
CancelToken* current_cancel_token();

/**
 * Cancellation bridge for OpenMP parallel regions.
 *
 * The token pointer is thread-local, so a bare `checkpoint()` inside a
 * parallel-for body silently reads no token on worker threads — and an
 * exception thrown there could not legally escape the region anyway.
 * ParallelCheckpoint captures the installing thread's token *before* the
 * region; workers poll the non-throwing stop() and bail out early; the
 * serial code after the region calls rethrow(), which re-polls on the
 * installing thread and throws the typed error.  Deadline and memory
 * violations are persistent (they re-trigger on every poll), and manual
 * cancel() latches, so the serial re-poll always reproduces the
 * condition a worker observed.
 *
 * Usage:
 *   ParallelCheckpoint cp("scheme/phase");
 *   #pragma omp parallel for ...
 *   for (...) { if (cp.stop()) continue; ... }
 *   cp.rethrow(); // throws GraphorderError if cancelled mid-region
 */
class ParallelCheckpoint
{
  public:
    explicit ParallelCheckpoint(const char* site);

    /**
     * Non-throwing poll, safe from any thread.  Latches true once the
     * captured token reports a blown budget (budget checks read the
     * clock / RSS, so stride calls in hot loops).  False when no token
     * is installed.
     */
    bool stop() const;

    /** Serial-side: rethrow the cancellation as a typed error (no-op
     *  when no budget is blown).  Call after the parallel region. */
    void rethrow() const;

  private:
    const char* site_;
    CancelToken* token_;
    mutable std::atomic<bool> stop_{false};
};

/**
 * Cooperative checkpoint: polls the installed token (if any), throwing
 * GraphorderError(Cancelled | BudgetExceeded) when a budget is blown.
 * @p site names the checkpoint in the error message.
 */
void checkpoint(const char* site);

/** Resident set size in bytes (Linux /proc/self/statm; 0 elsewhere). */
std::uint64_t current_rss_bytes();

} // namespace graphorder
