/**
 * @file
 * Minimal logging and fatal-error helpers.
 *
 * Following the gem5 convention: fatal() is for user errors (bad arguments,
 * malformed input) and exits cleanly; panic() is for internal invariant
 * violations and aborts.  Both print to stderr.
 */
#pragma once

#include <string>

namespace graphorder {

/** Print an informational message to stderr ("info: ..."). */
void inform(const std::string& msg);

/** Print a warning to stderr ("warn: ..."). */
void warn(const std::string& msg);

/** User error: print and exit(1). */
[[noreturn]] void fatal(const std::string& msg);

/** Internal bug: print and abort(). */
[[noreturn]] void panic(const std::string& msg);

} // namespace graphorder
