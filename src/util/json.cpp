#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace graphorder {

JsonValue&
JsonValue::operator=(const JsonValue& other)
{
    if (this == &other)
        return *this;
    kind_ = other.kind_;
    bool_ = other.bool_;
    num_ = other.num_;
    str_ = other.str_;
    arr_ = other.arr_ ? std::make_unique<Array>(*other.arr_) : nullptr;
    obj_ = other.obj_ ? std::make_unique<Object>(*other.obj_) : nullptr;
    return *this;
}

namespace {

[[noreturn]] void
bad(StatusCode code, std::size_t offset, const std::string& what)
{
    throw GraphorderError(code, "json: offset "
                                    + std::to_string(offset) + ": "
                                    + what);
}

/** Recursive-descent parser over a string; depth-limited. */
struct Parser
{
    const std::string& s;
    std::size_t pos = 0;
    int depth = 0;
    static constexpr int kMaxDepth = 64;

    void skip_ws()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r'))
            ++pos;
    }

    char peek()
    {
        if (pos >= s.size())
            bad(StatusCode::Truncated, pos, "unexpected end of input");
        return s[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            bad(StatusCode::InvalidInput, pos,
                std::string("expected '") + c + "', got '" + s[pos]
                    + "'");
        ++pos;
    }

    bool consume_literal(const char* lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (s.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue parse_value()
    {
        if (++depth > kMaxDepth)
            bad(StatusCode::InvalidInput, pos, "nesting too deep");
        skip_ws();
        JsonValue v;
        switch (peek()) {
          case '{': v = parse_object(); break;
          case '[': v = parse_array(); break;
          case '"': v = JsonValue(parse_string()); break;
          case 't':
            if (!consume_literal("true"))
                bad(StatusCode::InvalidInput, pos, "bad literal");
            v = JsonValue(true);
            break;
          case 'f':
            if (!consume_literal("false"))
                bad(StatusCode::InvalidInput, pos, "bad literal");
            v = JsonValue(false);
            break;
          case 'n':
            if (!consume_literal("null"))
                bad(StatusCode::InvalidInput, pos, "bad literal");
            break;
          default: v = JsonValue(parse_number()); break;
        }
        --depth;
        return v;
    }

    JsonValue parse_object()
    {
        expect('{');
        JsonValue::Object out;
        skip_ws();
        if (peek() == '}') {
            ++pos;
            return JsonValue(std::move(out));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            out.insert_or_assign(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return JsonValue(std::move(out));
        }
    }

    JsonValue parse_array()
    {
        expect('[');
        JsonValue::Array out;
        skip_ws();
        if (peek() == ']') {
            ++pos;
            return JsonValue(std::move(out));
        }
        for (;;) {
            out.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return JsonValue(std::move(out));
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                bad(StatusCode::Truncated, pos, "unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                bad(StatusCode::Truncated, pos, "unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    bad(StatusCode::Truncated, pos, "short \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        bad(StatusCode::InvalidInput, pos,
                            "bad \\u escape");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through as two 3-byte sequences; our writers
                // only escape control characters, all below 0x80).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                bad(StatusCode::InvalidInput, pos - 1,
                    std::string("bad escape '\\") + e + "'");
            }
        }
    }

    double parse_number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            bad(StatusCode::InvalidInput, pos, "expected a value");
        const std::string text = s.substr(start, pos - start);
        char* end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == nullptr || *end != '\0')
            bad(StatusCode::InvalidInput, start,
                "bad number '" + text + "'");
        return v;
    }
};

} // namespace

bool
JsonValue::as_bool() const
{
    if (kind_ != Kind::Bool)
        throw GraphorderError(StatusCode::InvalidInput,
                              "json: value is not a bool");
    return bool_;
}

double
JsonValue::as_number() const
{
    if (kind_ != Kind::Number)
        throw GraphorderError(StatusCode::InvalidInput,
                              "json: value is not a number");
    return num_;
}

const std::string&
JsonValue::as_string() const
{
    if (kind_ != Kind::String)
        throw GraphorderError(StatusCode::InvalidInput,
                              "json: value is not a string");
    return str_;
}

const JsonValue::Array&
JsonValue::as_array() const
{
    if (kind_ != Kind::Array)
        throw GraphorderError(StatusCode::InvalidInput,
                              "json: value is not an array");
    return *arr_;
}

const JsonValue::Object&
JsonValue::as_object() const
{
    if (kind_ != Kind::Object)
        throw GraphorderError(StatusCode::InvalidInput,
                              "json: value is not an object");
    return *obj_;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
}

const JsonValue*
JsonValue::find_path(const std::string& path) const
{
    const JsonValue* cur = this;
    std::size_t start = 0;
    while (cur != nullptr && start <= path.size()) {
        const std::size_t slash = path.find('/', start);
        const std::string key =
            path.substr(start, slash == std::string::npos
                                   ? std::string::npos
                                   : slash - start);
        cur = cur->find(key);
        if (slash == std::string::npos)
            return cur;
        start = slash + 1;
    }
    return cur;
}

JsonValue
parse_json(const std::string& text)
{
    Parser p{text};
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos != text.size())
        bad(StatusCode::InvalidInput, p.pos,
            "trailing characters after document");
    return v;
}

JsonValue
parse_json_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw GraphorderError(StatusCode::InvalidInput,
                              "cannot read json file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_json(ss.str());
}

} // namespace graphorder
