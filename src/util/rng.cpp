#include "util/rng.hpp"

#include <cmath>

namespace graphorder {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the four state words via splitmix64 as recommended by the
    // xoshiro authors; guards against the all-zero state.
    std::uint64_t sm = seed;
    for (auto& w : s_)
        w = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::next_double()
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

std::int64_t
Rng::next_range(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

double
Rng::next_gaussian(double mean, double stddev)
{
    // Box-Muller; u1 is kept away from 0 so the log is finite.
    double u1 = next_double();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586;
    return mean + stddev * r * std::cos(two_pi * u2);
}

Rng
Rng::split()
{
    return Rng((*this)());
}

} // namespace graphorder
