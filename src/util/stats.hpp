/**
 * @file
 * Descriptive statistics and histogram helpers.
 *
 * The paper reports gap *distributions* as violin plots (Fig. 8).  A violin
 * is a kernel-density sketch of a sample; the text equivalent we produce is
 * the set of quantiles plus a log-binned histogram, which captures the same
 * multi-modality and lognormal tails the paper discusses.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphorder {

/** Summary statistics of a sample. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p25 = 0.0;   ///< first quartile
    double median = 0.0;
    double p75 = 0.0;   ///< third quartile
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Compute summary statistics; sorts a copy of the input. */
Summary summarize(std::vector<double> values);

/**
 * Quantile of a *sorted* sample via linear interpolation,
 * q in [0,1]; matches numpy's default 'linear' method.
 */
double quantile_sorted(const std::vector<double>& sorted, double q);

/**
 * Histogram over logarithmic bins [base^k, base^{k+1}), suited to the
 * heavy-tailed gap distributions in the paper.  Values below 1 fall into
 * bin 0.
 */
class LogHistogram
{
  public:
    /** @param base bin growth factor (default 10 = decades). */
    explicit LogHistogram(double base = 10.0);

    /** Insert one observation (must be >= 0). */
    void add(double value);

    /** Number of bins currently materialized. */
    std::size_t num_bins() const { return counts_.size(); }

    /** Count in bin @p k, covering [base^k, base^{k+1}). */
    std::uint64_t bin_count(std::size_t k) const;

    /** Lower edge of bin @p k. */
    double bin_lower(std::size_t k) const;

    /** Total observations inserted. */
    std::uint64_t total() const { return total_; }

    /** One-line rendering: "[1,10):123 [10,100):45 ...". */
    std::string to_string() const;

  private:
    double base_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Arithmetic mean of a vector (0 for empty). */
double mean_of(const std::vector<double>& v);

/** Population standard deviation of a vector (0 for size < 1). */
double stddev_of(const std::vector<double>& v);

/** Geometric mean; values must be positive (zeros are clamped to 1e-12). */
double geomean_of(const std::vector<double>& v);

} // namespace graphorder
