/**
 * @file
 * Typed error taxonomy for the whole pipeline.
 *
 * Ad-hoc `std::runtime_error`s made every failure look the same to
 * callers; the taxonomy lets the CLI map failures to documented exit
 * codes, lets `run_guarded` (order/runner.hpp) decide whether a fallback
 * is warranted, and lets the fault-matrix tests assert that each failure
 * path surfaces the *intended* category.  `GraphorderError` derives from
 * `std::runtime_error` so pre-taxonomy call sites catching the base type
 * keep working.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace graphorder {

/** Failure categories; each maps to one documented CLI exit code. */
enum class StatusCode
{
    Ok = 0,
    InvalidInput,       ///< malformed file, bad parameter (exit 2)
    Truncated,          ///< input ended mid-structure (exit 2)
    BudgetExceeded,     ///< deadline or memory budget blown (exit 3)
    Cancelled,          ///< cooperative cancellation requested (exit 3)
    InvariantViolation, ///< internal structure failed validation (exit 4)
    Internal,           ///< unexpected error / injected fault (exit 4)
    Overloaded,         ///< admission rejected / load shed (exit 3)
    Unavailable,        ///< service draining or unreachable (exit 3)
};

/** Stable kebab-case label ("invalid-input", ...); never null. */
const char* status_code_name(StatusCode c);

/**
 * Documented process exit code for a failure category:
 * 0 ok, 2 invalid input (incl. truncated), 3 budget exceeded, cancelled,
 * overloaded or unavailable (transient — retry later), 4 internal error
 * or invariant violation.  (Exit 1 remains the generic usage-error path
 * of util/log.hpp's fatal().)
 */
int exit_code_for(StatusCode c);

/**
 * A failure description: code + message + outside-in context chain.
 * Default-constructed Status is Ok.  Small enough to return by value.
 */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return {}; }

    bool is_ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }
    const std::vector<std::string>& context() const { return context_; }

    /** Append a context frame ("while loading x.edges"); returns *this. */
    Status& with_context(std::string frame)
    {
        context_.push_back(std::move(frame));
        return *this;
    }

    /** "invalid-input: msg (while a; while b)" — stable, test-friendly. */
    std::string to_string() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
    std::vector<std::string> context_;
};

/** Exception carrying a Status; what() == status().to_string(). */
class GraphorderError : public std::runtime_error
{
  public:
    explicit GraphorderError(Status s)
        : std::runtime_error(s.to_string()), status_(std::move(s))
    {
    }
    GraphorderError(StatusCode code, const std::string& message)
        : GraphorderError(Status(code, message))
    {
    }

    const Status& status() const { return status_; }
    StatusCode code() const { return status_.code(); }

  private:
    Status status_;
};

/**
 * Map the in-flight exception to a Status: GraphorderError keeps its
 * taxonomy, anything else becomes Internal with the what() text.  Call
 * only from inside a catch block.
 */
Status status_from_current_exception();

/**
 * Value-or-Status result.  Converting constructors keep call sites
 * terse: `return Status(...);` or `return some_value;`.  value() on an
 * error throws the carried status as GraphorderError.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(Status s) : v_(std::move(s))
    {
        if (std::get<Status>(v_).is_ok())
            throw std::logic_error("Expected: error ctor needs non-ok");
    }

    bool has_value() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return has_value(); }

    /** Ok when a value is held. */
    Status status() const
    {
        return has_value() ? Status::ok() : std::get<Status>(v_);
    }

    T& value()
    {
        if (!has_value())
            throw GraphorderError(std::get<Status>(v_));
        return std::get<T>(v_);
    }
    const T& value() const
    {
        return const_cast<Expected*>(this)->value();
    }

    T& operator*() { return value(); }
    const T& operator*() const { return value(); }
    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }

  private:
    std::variant<T, Status> v_;
};

} // namespace graphorder
