#include "util/timer.hpp"

#include <algorithm>
#include <numeric>

namespace graphorder {

void
Timer::start()
{
    t0_ = clock::now();
    lap_ = t0_;
}

double
Timer::elapsed_s() const
{
    return std::chrono::duration<double>(clock::now() - t0_).count();
}

double
Timer::elapsed_ms() const
{
    return elapsed_s() * 1e3;
}

double
Timer::lap_s()
{
    const auto now = clock::now();
    const double d = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return d;
}

void
TimeSeries::add(double seconds)
{
    samples_.push_back(seconds);
}

double
TimeSeries::total() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

// Empty-series contract (see header): every aggregate is 0.0 when no
// sample exists, so the guards below are load-bearing, not defensive.
double
TimeSeries::mean() const
{
    return samples_.empty() ? 0.0 : total() / static_cast<double>(count());
}

double
TimeSeries::min() const
{
    return samples_.empty()
        ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double
TimeSeries::max() const
{
    return samples_.empty()
        ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

} // namespace graphorder
