/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * The observability layer emits JSON (metrics dumps, run reports,
 * Chrome traces) and — since PR 6 — also *consumes* it: `benchdiff`
 * compares two report files, and the tests parse what the writers
 * produced.  The container bakes in no JSON library, so this is a
 * small, strict, dependency-free reader: UTF-8 pass-through strings,
 * doubles for every number, `std::map` objects (sorted keys — lookups
 * and iteration are deterministic).
 *
 * Scope: parsing only what this repo writes.  No comments, no
 * trailing commas, no NaN/Infinity literals (our writers emit `null`
 * for non-finite values).  Depth is limited to guard against
 * adversarial inputs reaching the CLI.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace graphorder {

/** One JSON value; a tagged tree owned via shared_ptr-free deep copies. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() : kind_(Kind::Null) {}
    explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit JsonValue(double d) : kind_(Kind::Number), num_(d) {}
    explicit JsonValue(std::string s)
        : kind_(Kind::String), str_(std::move(s))
    {
    }
    explicit JsonValue(Array a)
        : kind_(Kind::Array), arr_(std::make_unique<Array>(std::move(a)))
    {
    }
    explicit JsonValue(Object o)
        : kind_(Kind::Object),
          obj_(std::make_unique<Object>(std::move(o)))
    {
    }

    JsonValue(const JsonValue& other) { *this = other; }
    JsonValue& operator=(const JsonValue& other);
    JsonValue(JsonValue&&) noexcept = default;
    JsonValue& operator=(JsonValue&&) noexcept = default;

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw GraphorderError(InvalidInput) on kind
     *  mismatch so benchdiff surfaces schema violations as exit 2. */
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /**
     * Slash-separated path lookup (`"metrics/counters/hw/cycles"` walks
     * nested objects; object keys themselves may not contain '/', which
     * holds for every name this repo emits except metric names — those
     * live one level deep, so find() them on the parent instead).
     */
    const JsonValue* find_path(const std::string& path) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::unique_ptr<Array> arr_;
    std::unique_ptr<Object> obj_;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * anything else after the value is an error).
 * @throws GraphorderError(InvalidInput) with an offset-bearing message
 *         on malformed input; Truncated when the text ends mid-value.
 */
JsonValue parse_json(const std::string& text);

/**
 * Read and parse @p path.
 * @throws GraphorderError(InvalidInput) when the file cannot be read.
 */
JsonValue parse_json_file(const std::string& path);

} // namespace graphorder
