#include "util/faultpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace graphorder {

namespace detail {

std::atomic<int> g_armed_faults{0};

struct FaultPointAdmin
{
    static void arm(FaultPoint& p, std::uint64_t nth, bool repeat)
    {
        p.arm(nth, repeat);
    }
    static void disarm(FaultPoint& p) { p.disarm(); }
};

} // namespace detail

namespace {

/**
 * Process-wide site registry.  Heap-allocated and never destroyed so
 * that FaultPoint statics in other translation units can register during
 * dynamic initialization (and be looked up at process exit) regardless
 * of TU init/destruction order.
 */
/** Parsed arming request: the Nth-hit trigger plus the repeat flag. */
struct ArmSpec
{
    std::uint64_t nth = 1;
    bool repeat = false;
};

struct Registry
{
    std::mutex mu;
    std::vector<FaultPoint*> points;
    std::unordered_map<std::string, FaultPoint*> by_name;
    /** Specs naming not-yet-registered sites; applied on registration. */
    std::unordered_map<std::string, ArmSpec> pending;
};

void
arm_impl(Registry& r, const std::string& name, std::uint64_t nth,
         bool repeat);

std::size_t
apply_spec_impl(Registry& r, const std::string& spec);

Registry&
registry()
{
    // The env spec is parsed inside the initializer, which operates on
    // the new Registry directly (never re-entering registry()): parsing
    // happens exactly once, before any site can be registered or fired.
    // Malformed entries are reported and skipped rather than thrown:
    // this can run during static initialization, where an exception
    // would call std::terminate before main() prints anything useful.
    static Registry* r = [] {
        auto* reg = new Registry;
        if (const char* env = std::getenv("GRAPHORDER_FAULTS")) {
            try {
                apply_spec_impl(*reg, env);
            } catch (const std::exception& e) {
                std::fprintf(stderr,
                             "warn: ignoring bad GRAPHORDER_FAULTS: %s\n",
                             e.what());
            }
        }
        return reg;
    }();
    return *r;
}

void
arm_impl(Registry& r, const std::string& name, std::uint64_t nth,
         bool repeat)
{
    if (nth == 0)
        throw GraphorderError(StatusCode::InvalidInput,
                              "fault '" + name
                                  + "': hit index must be >= 1");
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.by_name.find(name);
    if (it != r.by_name.end())
        detail::FaultPointAdmin::arm(*it->second, nth, repeat);
    else
        r.pending[name] = {nth, repeat}; // applied on registration
}

std::size_t
apply_spec_impl(Registry& r, const std::string& spec)
{
    std::size_t applied = 0;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0)
            throw GraphorderError(
                StatusCode::InvalidInput,
                "fault spec entry '" + entry
                    + "': expected name:N, name:N+ or name:*");
        const std::string name = entry.substr(0, colon);
        const std::string trigger = entry.substr(colon + 1);
        if (trigger == "*") { // every hit == 1+
            arm_impl(r, name, 1, /*repeat=*/true);
            ++applied;
            continue;
        }
        bool repeat = false;
        std::string digits = trigger;
        if (!digits.empty() && digits.back() == '+') {
            repeat = true;
            digits.pop_back();
        }
        char* parse_end = nullptr;
        const unsigned long long nth =
            std::strtoull(digits.c_str(), &parse_end, 10);
        if (digits.empty() || parse_end == digits.c_str()
            || *parse_end != '\0' || nth == 0)
            throw GraphorderError(
                StatusCode::InvalidInput,
                "fault spec entry '" + entry
                    + "': hit count must be a positive integer, N+ or *");
        arm_impl(r, name, nth, repeat);
        ++applied;
    }
    return applied;
}

} // namespace

FaultPoint::FaultPoint(std::string name, StatusCode code,
                       std::string description)
    : name_(std::move(name)),
      code_(code),
      description_(std::move(description))
{
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.points.push_back(this);
    r.by_name[name_] = this;
    const auto it = r.pending.find(name_);
    if (it != r.pending.end()) {
        detail::FaultPointAdmin::arm(*this, it->second.nth,
                                     it->second.repeat);
        r.pending.erase(it);
    }
}

void
FaultPoint::arm(std::uint64_t nth, bool repeat)
{
    const bool was_armed =
        fire_at_.load(std::memory_order_relaxed) != 0
        && !fired_.load(std::memory_order_relaxed);
    fire_at_.store(hits_.load(std::memory_order_relaxed) + nth,
                   std::memory_order_relaxed);
    repeat_.store(repeat, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    if (!was_armed)
        detail::g_armed_faults.fetch_add(1, std::memory_order_relaxed);
}

void
FaultPoint::disarm()
{
    const bool was_armed =
        fire_at_.load(std::memory_order_relaxed) != 0
        && !fired_.load(std::memory_order_relaxed);
    fire_at_.store(0, std::memory_order_relaxed);
    repeat_.store(false, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    if (was_armed)
        detail::g_armed_faults.fetch_sub(1, std::memory_order_relaxed);
}

void
FaultPoint::fire_slow()
{
    const std::uint64_t hit =
        hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t at = fire_at_.load(std::memory_order_relaxed);
    if (at == 0 || hit < at)
        return;
    if (repeat_.load(std::memory_order_relaxed)) {
        // Sustained mode (`site:*` / `site:N+`): fire on every
        // qualifying hit, never self-disarm — the global armed count
        // stays up until clear_faults()/disarm().
        throw GraphorderError(
            code_, "injected fault at '" + name_ + "' (hit "
                       + std::to_string(hit) + ", sustained)");
    }
    if (fired_.exchange(true, std::memory_order_relaxed))
        return; // already fired (e.g. a fallback retry re-entered)
    detail::g_armed_faults.fetch_sub(1, std::memory_order_relaxed);
    throw GraphorderError(
        code_, "injected fault at '" + name_ + "' (hit "
                   + std::to_string(hit) + ")");
}

const std::vector<FaultPoint*>&
all_fault_points()
{
    return registry().points;
}

FaultPoint*
find_fault_point(const std::string& name)
{
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.by_name.find(name);
    return it == r.by_name.end() ? nullptr : it->second;
}

void
arm_fault(const std::string& name, std::uint64_t nth, bool repeat)
{
    arm_impl(registry(), name, nth, repeat);
}

void
clear_faults()
{
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (FaultPoint* p : r.points)
        detail::FaultPointAdmin::disarm(*p);
    r.pending.clear();
}

std::size_t
apply_fault_spec(const std::string& spec)
{
    return apply_spec_impl(registry(), spec);
}

} // namespace graphorder
