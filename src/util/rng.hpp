/**
 * @file
 * Deterministic pseudo-random number generation for the whole library.
 *
 * Every experiment in the paper is a comparison between orderings on the
 * *same* input, so reproducibility of both the synthetic graphs and the
 * randomized schemes (random ordering, IC-model coin flips, simulated
 * annealing) matters more than statistical sophistication.  We use
 * xoshiro256** seeded via splitmix64, which is fast, has a 256-bit state
 * and passes BigCrush; std::mt19937_64 would also do but is slower and its
 * distributions are not portable across standard libraries.
 */
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace graphorder {

/** Mix a 64-bit seed into a well-distributed state word (splitmix64). */
std::uint64_t splitmix64(std::uint64_t& state);

/**
 * xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can be
 * used with <random> distributions, but the helpers below are preferred
 * because their results are identical on every platform.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound) using Lemire's rejection method. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli trial with success probability @p p. */
    bool next_bool(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t next_range(std::int64_t lo, std::int64_t hi);

    /** Normally distributed value (Box-Muller; consumes two draws). */
    double next_gaussian(double mean = 0.0, double stddev = 1.0);

    /**
     * Split off an independent generator.  Used to give each thread or each
     * RRR-set sample its own deterministic stream.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
};

/** Fisher-Yates shuffle of a range, deterministic given the Rng state. */
template <typename RandomIt>
void
shuffle(RandomIt first, RandomIt last, Rng& rng)
{
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
        const auto j = rng.next_below(i);
        using std::swap;
        swap(first[i - 1], first[j]);
    }
}

} // namespace graphorder
