/**
 * @file
 * Plain-text table rendering used by the bench harnesses to print the
 * paper's tables and heat maps in a terminal-friendly way.
 */
#pragma once

#include <string>
#include <vector>

namespace graphorder {

/** Column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (cells converted by the caller). */
    void row(std::vector<std::string> cells);

    /** Helper: format a double with @p precision significant decimals. */
    static std::string num(double v, int precision = 3);

    /** Helper: format an integer. */
    static std::string num(std::uint64_t v);

    /** Render with padded columns and separators. */
    std::string to_string() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace graphorder
