/**
 * @file
 * Heavy-edge matching for multilevel coarsening (paper §III-D cites the
 * approximate weighted matching of Halappanavar et al. as the coarsening
 * engine of partition-based ordering).
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace graphorder {

/**
 * Greedy heavy-edge matching.
 *
 * Vertices are visited in random order; each unmatched vertex matches its
 * unmatched neighbor with the heaviest connecting edge (ties to lower
 * degree, favoring balanced coarse vertices).  Unmatched vertices match
 * themselves.
 *
 * @param vweight optional vertex weights used for the tie-break (heavier
 *        vertices are less attractive); may be empty.
 * @return match[v] = partner of v (== v if unmatched).
 */
std::vector<vid_t> heavy_edge_matching(const Csr& g,
                                       const std::vector<double>& vweight,
                                       Rng& rng);

/**
 * Convert a matching to a dense group map (each matched pair becomes one
 * group).  @return number of groups.
 */
vid_t matching_to_groups(const std::vector<vid_t>& match,
                         std::vector<vid_t>& group_out);

} // namespace graphorder
