#include "part/matching.hpp"

#include <numeric>

namespace graphorder {

std::vector<vid_t>
heavy_edge_matching(const Csr& g, const std::vector<double>& vweight,
                    Rng& rng)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> match(n, kNoVertex);
    std::vector<vid_t> visit(n);
    std::iota(visit.begin(), visit.end(), vid_t{0});
    shuffle(visit.begin(), visit.end(), rng);

    for (vid_t v : visit) {
        if (match[v] != kNoVertex)
            continue;
        vid_t best = v;
        weight_t best_w = -1;
        const auto nbrs = g.neighbors(v);
        const auto ws = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const vid_t u = nbrs[i];
            if (u == v || match[u] != kNoVertex)
                continue;
            const weight_t w = ws.empty() ? 1.0 : ws[i];
            bool better = w > best_w;
            if (w == best_w && best != v && !vweight.empty()
                && vweight[u] < vweight[best]) {
                better = true; // prefer lighter partner on weight ties
            }
            if (better) {
                best = u;
                best_w = w;
            }
        }
        match[v] = best;
        match[best] = v; // self-match if best == v
    }
    return match;
}

vid_t
matching_to_groups(const std::vector<vid_t>& match,
                   std::vector<vid_t>& group_out)
{
    const vid_t n = static_cast<vid_t>(match.size());
    group_out.assign(n, kNoVertex);
    vid_t next = 0;
    for (vid_t v = 0; v < n; ++v) {
        if (group_out[v] != kNoVertex)
            continue;
        group_out[v] = next;
        const vid_t u = match[v];
        if (u != v && u != kNoVertex)
            group_out[u] = next;
        ++next;
    }
    return next;
}

} // namespace graphorder
