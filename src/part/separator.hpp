/**
 * @file
 * Vertex separators and nested-dissection ordering (paper §III-E).
 *
 * ND recursively bisects the graph, derives a small vertex separator from
 * the edge cut, orders the two halves recursively and numbers the
 * separator last — the classic fill-reducing layout of George (1973),
 * implemented here on top of the multilevel partitioner (as in METIS).
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "part/partition.hpp"

namespace graphorder {

/**
 * Derive a vertex separator from a 2-way edge cut by greedy minimal vertex
 * cover of the cut edges (pick the endpoint covering more uncovered cut
 * edges, ties to the larger side to help balance).
 *
 * @return separator flag per vertex (1 = in separator).
 */
std::vector<std::uint8_t>
vertex_separator_from_cut(const Csr& g, const std::vector<std::uint8_t>& side);

/**
 * Nested-dissection ordering.
 *
 * @param leaf_size subgraphs at or below this size are numbered by BFS
 *        (a stand-in for the minimum-degree leaf orderings of METIS).
 * @return order vector: order[k] = vertex placed at rank k.
 */
std::vector<vid_t> nested_dissection_order(const Csr& g, vid_t leaf_size,
                                           const PartitionOptions& opt);

} // namespace graphorder
