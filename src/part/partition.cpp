#include "part/partition.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "graph/coarsen.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "part/matching.hpp"
#include "part/refine.hpp"
#include "util/rng.hpp"

namespace graphorder {

std::vector<vid_t>
Partition::part_sizes() const
{
    std::vector<vid_t> sizes(num_parts, 0);
    for (vid_t p : part)
        ++sizes[p];
    return sizes;
}

double
partition_cut(const Csr& g, const std::vector<vid_t>& part)
{
    double cut = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const auto nbrs = g.neighbors(v);
        const auto ws = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            if (part[nbrs[i]] != part[v])
                cut += ws.empty() ? 1.0 : ws[i];
    }
    return cut / 2.0;
}

namespace {

/** One level of the multilevel hierarchy. */
struct Level
{
    Csr graph;
    std::vector<double> vweight;
    /** fine vertex -> coarse vertex of the *next* level. */
    std::vector<vid_t> to_coarse;
};

/**
 * Greedy graph growing: BFS-grow side 0 from a start vertex until it holds
 * ~target0 of the total weight.
 */
std::vector<std::uint8_t>
grow_bisection(const Csr& g, const std::vector<double>& vweight,
               double target0, vid_t start)
{
    const vid_t n = g.num_vertices();
    auto vw = [&](vid_t v) { return vweight.empty() ? 1.0 : vweight[v]; };
    double total = 0;
    for (vid_t v = 0; v < n; ++v)
        total += vw(v);
    const double want = total * target0;

    std::vector<std::uint8_t> side(n, 1);
    std::deque<vid_t> queue;
    std::vector<std::uint8_t> seen(n, 0);
    double grown = 0;
    queue.push_back(start);
    seen[start] = 1;
    vid_t scan = 0; // fallback scan for disconnected graphs
    while (grown < want) {
        if (queue.empty()) {
            while (scan < n && seen[scan])
                ++scan;
            if (scan >= n)
                break;
            queue.push_back(scan);
            seen[scan] = 1;
        }
        const vid_t v = queue.front();
        queue.pop_front();
        side[v] = 0;
        grown += vw(v);
        for (vid_t u : g.neighbors(v)) {
            if (!seen[u]) {
                seen[u] = 1;
                queue.push_back(u);
            }
        }
    }
    return side;
}

/** Multilevel bisection of one (sub)graph. */
Bisection
multilevel_bisect(const Csr& g, const std::vector<double>& vweight,
                  double target0_fraction, const PartitionOptions& opt,
                  Rng& rng)
{
    // ---- Coarsening phase.
    std::vector<Level> levels;
    levels.push_back({g, vweight, {}});
    if (levels.back().vweight.empty())
        levels.back().vweight.assign(g.num_vertices(), 1.0);

    while (levels.back().graph.num_vertices() > opt.coarsen_limit) {
        Level& fine = levels.back();
        auto match = heavy_edge_matching(fine.graph, fine.vweight, rng);
        std::vector<vid_t> group;
        const vid_t ng = matching_to_groups(match, group);
        // Matching stalled (star-like neighborhoods match one leaf per
        // round): stop coarsening rather than pile up hundreds of
        // near-identical levels.
        if (ng >= fine.graph.num_vertices() * 19 / 20)
            break;
        auto coarse = coarsen_by_groups(fine.graph, group, ng);
        Level next;
        next.graph = std::move(coarse.graph);
        next.vweight.assign(ng, 0.0);
        for (vid_t v = 0; v < fine.graph.num_vertices(); ++v)
            next.vweight[group[v]] += fine.vweight[v];
        fine.to_coarse = std::move(group);
        levels.push_back(std::move(next));
    }

    // ---- Initial bisection on the coarsest graph: best of a few greedy
    // growings from random starts, each polished by FM.
    Level& coarsest = levels.back();
    const vid_t nc = coarsest.graph.num_vertices();
    double total_w = std::accumulate(coarsest.vweight.begin(),
                                     coarsest.vweight.end(), 0.0);
    const double target0 = total_w * target0_fraction;

    Bisection best;
    bool have_best = false;
    for (int t = 0; t < std::max(1, opt.init_trials); ++t) {
        const vid_t start = nc == 0
            ? 0 : static_cast<vid_t>(rng.next_below(nc));
        auto side = grow_bisection(coarsest.graph, coarsest.vweight,
                                   target0_fraction, start);
        auto b = make_bisection(coarsest.graph, coarsest.vweight,
                                std::move(side));
        fm_refine(coarsest.graph, coarsest.vweight, b, target0,
                  opt.imbalance, opt.refine_passes);
        if (!have_best || b.cut < best.cut) {
            best = std::move(b);
            have_best = true;
        }
    }

    // ---- Uncoarsening with refinement.
    for (std::size_t li = levels.size() - 1; li-- > 0;) {
        Level& fine = levels[li];
        std::vector<std::uint8_t> fine_side(fine.graph.num_vertices());
        for (vid_t v = 0; v < fine.graph.num_vertices(); ++v)
            fine_side[v] = best.side[fine.to_coarse[v]];
        best = make_bisection(fine.graph, fine.vweight,
                              std::move(fine_side));
        const double ft = std::accumulate(fine.vweight.begin(),
                                          fine.vweight.end(), 0.0)
            * target0_fraction;
        fm_refine(fine.graph, fine.vweight, best, ft, opt.imbalance,
                  opt.refine_passes);
    }
    return best;
}

/** Recursive k-way bisection into parts [first_part, first_part + k). */
void
kway_recurse(const Csr& g, const std::vector<double>& vweight, vid_t k,
             vid_t first_part, const PartitionOptions& opt, Rng& rng,
             std::vector<vid_t>& out, const std::vector<vid_t>& to_parent)
{
    if (k <= 1 || g.num_vertices() == 0) {
        for (vid_t v = 0; v < g.num_vertices(); ++v)
            out[to_parent[v]] = first_part;
        return;
    }
    const vid_t k0 = k / 2;
    const vid_t k1 = k - k0;
    const double frac0 = static_cast<double>(k0) / static_cast<double>(k);
    auto b = multilevel_bisect(g, vweight, frac0, opt, rng);

    for (std::uint8_t s : {std::uint8_t{0}, std::uint8_t{1}}) {
        std::vector<std::uint8_t> keep(g.num_vertices());
        for (vid_t v = 0; v < g.num_vertices(); ++v)
            keep[v] = b.side[v] == s;
        auto sg = induced_subgraph(g, keep);
        std::vector<double> sw;
        if (!vweight.empty()) {
            sw.reserve(sg.to_parent.size());
            for (vid_t v : sg.to_parent)
                sw.push_back(vweight[v]);
        }
        std::vector<vid_t> parent_ids(sg.to_parent.size());
        for (std::size_t i = 0; i < sg.to_parent.size(); ++i)
            parent_ids[i] = to_parent[sg.to_parent[i]];
        kway_recurse(sg.graph, sw, s == 0 ? k0 : k1,
                     s == 0 ? first_part : first_part + k0, opt, rng, out,
                     parent_ids);
    }
}

} // namespace

Partition
bisect(const Csr& g, const std::vector<double>& vweight,
       double target0_fraction, const PartitionOptions& opt)
{
    Rng rng(opt.seed);
    auto b = multilevel_bisect(g, vweight, target0_fraction, opt, rng);
    Partition p;
    p.num_parts = 2;
    p.part.assign(g.num_vertices(), 0);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        p.part[v] = b.side[v];
    p.cut_weight = b.cut;
    return p;
}

Partition
partition_kway(const Csr& g, vid_t k, const PartitionOptions& opt)
{
    Partition p;
    p.num_parts = std::max<vid_t>(k, 1);
    p.part.assign(g.num_vertices(), 0);
    if (p.num_parts == 1 || g.num_vertices() == 0) {
        p.cut_weight = 0;
        return p;
    }
    Rng rng(opt.seed);
    std::vector<vid_t> ident(g.num_vertices());
    std::iota(ident.begin(), ident.end(), vid_t{0});
    kway_recurse(g, {}, p.num_parts, 0, opt, rng, p.part, ident);
    p.cut_weight = partition_cut(g, p.part);
    return p;
}

} // namespace graphorder
