#include "part/separator.hpp"

#include <algorithm>
#include <numeric>

#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"

namespace graphorder {

std::vector<std::uint8_t>
vertex_separator_from_cut(const Csr& g, const std::vector<std::uint8_t>& side)
{
    const vid_t n = g.num_vertices();
    std::vector<std::uint8_t> sep(n, 0);

    // Count, per vertex, how many of its incident edges cross the cut.
    std::vector<vid_t> cross(n, 0);
    for (vid_t v = 0; v < n; ++v)
        for (vid_t u : g.neighbors(v))
            if (side[u] != side[v])
                ++cross[v];

    // Process boundary vertices by decreasing cross count; add a vertex to
    // the separator if it still has an uncovered cut edge.
    std::vector<vid_t> boundary;
    for (vid_t v = 0; v < n; ++v)
        if (cross[v] > 0)
            boundary.push_back(v);
    std::sort(boundary.begin(), boundary.end(), [&](vid_t a, vid_t b) {
        return cross[a] != cross[b] ? cross[a] > cross[b] : a < b;
    });
    for (vid_t v : boundary) {
        bool uncovered = false;
        for (vid_t u : g.neighbors(v)) {
            if (side[u] != side[v] && !sep[u] && !sep[v]) {
                uncovered = true;
                break;
            }
        }
        if (uncovered)
            sep[v] = 1;
    }
    return sep;
}

namespace {

/** BFS numbering of a (sub)graph, covering disconnected pieces. */
std::vector<vid_t>
bfs_order_all(const Csr& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> seen(n, 0);
    for (vid_t s = 0; s < n; ++s) {
        if (seen[s])
            continue;
        seen[s] = 1;
        std::size_t head = order.size();
        order.push_back(s);
        while (head < order.size()) {
            const vid_t v = order[head++];
            for (vid_t u : g.neighbors(v)) {
                if (!seen[u]) {
                    seen[u] = 1;
                    order.push_back(u);
                }
            }
        }
    }
    return order;
}

void
nd_recurse(const Csr& g, const std::vector<vid_t>& to_parent, vid_t leaf_size,
           const PartitionOptions& opt, std::uint64_t seed,
           std::vector<vid_t>& out)
{
    const vid_t n = g.num_vertices();
    if (n == 0)
        return;
    if (n <= leaf_size) {
        for (vid_t v : bfs_order_all(g))
            out.push_back(to_parent[v]);
        return;
    }
    PartitionOptions local = opt;
    local.seed = seed;
    auto p = bisect(g, {}, 0.5, local);
    std::vector<std::uint8_t> side(n);
    for (vid_t v = 0; v < n; ++v)
        side[v] = static_cast<std::uint8_t>(p.part[v]);
    auto sep = vertex_separator_from_cut(g, side);

    // Degenerate split (whole graph in separator or one side empty):
    // fall back to BFS numbering to guarantee progress.
    vid_t n0 = 0, n1 = 0, nsep = 0;
    for (vid_t v = 0; v < n; ++v) {
        if (sep[v])
            ++nsep;
        else if (side[v] == 0)
            ++n0;
        else
            ++n1;
    }
    if (nsep >= n || n0 == 0 || n1 == 0) {
        for (vid_t v : bfs_order_all(g))
            out.push_back(to_parent[v]);
        return;
    }

    for (std::uint8_t s : {std::uint8_t{0}, std::uint8_t{1}}) {
        std::vector<std::uint8_t> keep(n, 0);
        for (vid_t v = 0; v < n; ++v)
            keep[v] = !sep[v] && side[v] == s;
        auto sm = induced_subgraph(g, keep);
        std::vector<vid_t> parent_ids(sm.to_parent.size());
        for (std::size_t i = 0; i < sm.to_parent.size(); ++i)
            parent_ids[i] = to_parent[sm.to_parent[i]];
        nd_recurse(sm.graph, parent_ids, leaf_size, opt,
                   seed * 6364136223846793005ULL + 1 + s, out);
    }
    // Separator vertices are numbered last (highest ranks).
    for (vid_t v = 0; v < n; ++v)
        if (sep[v])
            out.push_back(to_parent[v]);
}

} // namespace

std::vector<vid_t>
nested_dissection_order(const Csr& g, vid_t leaf_size,
                        const PartitionOptions& opt)
{
    std::vector<vid_t> out;
    out.reserve(g.num_vertices());
    std::vector<vid_t> ident(g.num_vertices());
    std::iota(ident.begin(), ident.end(), vid_t{0});
    nd_recurse(g, ident, std::max<vid_t>(leaf_size, 8), opt, opt.seed, out);
    return out;
}

} // namespace graphorder
