/**
 * @file
 * Multilevel graph partitioning (METIS-style): heavy-edge-matching
 * coarsening, greedy graph-growing initial bisection, FM refinement during
 * uncoarsening, and recursive bisection for k-way partitions.
 *
 * The paper repurposes METIS as an ordering generator (§III-D): vertices
 * are numbered partition by partition.  This module provides the
 * partitions; src/order/partition_order.* turns them into orderings.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace graphorder {

/** Tuning knobs of the multilevel partitioner. */
struct PartitionOptions
{
    /** Stop coarsening below this many vertices. */
    vid_t coarsen_limit = 64;
    /** Allowed relative imbalance per bisection. */
    double imbalance = 0.05;
    /** Number of random initial-bisection trials (best cut kept). */
    int init_trials = 4;
    /** FM passes per uncoarsening level. */
    int refine_passes = 6;
    /** RNG seed. */
    std::uint64_t seed = 12345;
};

/** A k-way partition of a graph. */
struct Partition
{
    std::vector<vid_t> part; ///< part[v] in [0, num_parts)
    vid_t num_parts = 0;
    double cut_weight = 0;   ///< total weight of edges crossing parts

    /** Vertex count of each part. */
    std::vector<vid_t> part_sizes() const;
};

/**
 * Bisect @p g into two sides with weight split target0 : (1 - target0).
 * @param vweight optional per-vertex weights (empty = unit).
 */
Partition bisect(const Csr& g, const std::vector<double>& vweight,
                 double target0_fraction, const PartitionOptions& opt);

/** Partition into @p k parts by recursive bisection. */
Partition partition_kway(const Csr& g, vid_t k, const PartitionOptions& opt);

/** Recompute the cut weight of a partition from scratch. */
double partition_cut(const Csr& g, const std::vector<vid_t>& part);

} // namespace graphorder
