#include "part/refine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace graphorder {

namespace {

/** Weight of edge slot i of vertex v (1.0 when unweighted). */
inline weight_t
edge_w(const Csr& g, vid_t v, std::size_t i)
{
    const auto ws = g.neighbor_weights(v);
    return ws.empty() ? 1.0 : ws[i];
}

/** External minus internal connectivity of v — the FM gain of moving v. */
double
gain_of(const Csr& g, const std::vector<std::uint8_t>& side, vid_t v)
{
    double ext = 0, in = 0;
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const double w = edge_w(g, v, i);
        if (side[nbrs[i]] == side[v])
            in += w;
        else
            ext += w;
    }
    return ext - in;
}

} // namespace

Bisection
make_bisection(const Csr& g, const std::vector<double>& vweight,
               std::vector<std::uint8_t> side)
{
    Bisection b;
    b.side = std::move(side);
    const vid_t n = g.num_vertices();
    for (vid_t v = 0; v < n; ++v) {
        b.side_weight[b.side[v]] += vweight.empty() ? 1.0 : vweight[v];
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            if (b.side[nbrs[i]] != b.side[v])
                b.cut += edge_w(g, v, i);
    }
    b.cut /= 2.0; // each cut edge seen from both sides
    return b;
}

double
fm_refine_pass(const Csr& g, const std::vector<double>& vweight,
               Bisection& b, double target0, double imbalance,
               std::size_t max_moves)
{
    const vid_t n = g.num_vertices();
    if (max_moves == 0)
        max_moves = n;
    const double cut_before = b.cut;
    const double slack = imbalance * (b.side_weight[0] + b.side_weight[1]);

    auto vw = [&](vid_t v) { return vweight.empty() ? 1.0 : vweight[v]; };
    auto balanced_after = [&](vid_t v) {
        // Weight of side 0 if v were moved.
        const double w0 = b.side[v] == 0 ? b.side_weight[0] - vw(v)
                                         : b.side_weight[0] + vw(v);
        return std::abs(w0 - target0) <= slack;
    };

    // Lazy max-heap of (gain, v); stale entries are skipped on pop.
    using Entry = std::pair<double, vid_t>;
    std::priority_queue<Entry> heap;
    std::vector<double> gain(n);
    std::vector<std::uint8_t> locked(n, 0);
    std::vector<std::uint8_t> has_gain(n, 0);

    // Seed with boundary vertices only (interior moves never help first).
    for (vid_t v = 0; v < n; ++v) {
        bool boundary = false;
        for (vid_t u : g.neighbors(v)) {
            if (b.side[u] != b.side[v]) {
                boundary = true;
                break;
            }
        }
        if (boundary) {
            gain[v] = gain_of(g, b.side, v);
            has_gain[v] = 1;
            heap.emplace(gain[v], v);
        }
    }

    struct Move
    {
        vid_t v;
        double cut_after;
    };
    std::vector<Move> trail;
    double best_cut = b.cut;
    std::size_t best_prefix = 0;

    while (!heap.empty() && trail.size() < max_moves) {
        const auto [gv, v] = heap.top();
        heap.pop();
        if (locked[v] || gv != gain[v])
            continue; // stale or already moved
        if (!balanced_after(v))
            continue;

        // Apply the move.
        locked[v] = 1;
        const std::uint8_t from = b.side[v];
        b.side_weight[from] -= vw(v);
        b.side_weight[1 - from] += vw(v);
        b.side[v] = 1 - from;
        b.cut -= gv;
        trail.push_back({v, b.cut});
        if (b.cut < best_cut - 1e-12) {
            best_cut = b.cut;
            best_prefix = trail.size();
        }

        // Classic FM O(1) delta per neighbor: the (u, v) edge flips
        // between internal and external, changing u's gain by +-2w.
        {
            const auto nbrs = g.neighbors(v);
            const auto ws = g.neighbor_weights(v);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const vid_t u = nbrs[i];
                if (locked[u])
                    continue;
                if (!has_gain[u]) {
                    // First time u becomes boundary: full evaluation
                    // (the move of v is already reflected in b.side).
                    gain[u] = gain_of(g, b.side, u);
                    has_gain[u] = 1;
                } else {
                    const double w = ws.empty() ? 1.0 : ws[i];
                    // v now sits on side (1 - from); u on its own side.
                    gain[u] +=
                        b.side[u] == b.side[v] ? -2.0 * w : 2.0 * w;
                }
                heap.emplace(gain[u], u);
            }
        }
    }

    // Roll back moves past the best prefix.
    for (std::size_t i = trail.size(); i > best_prefix; --i) {
        const vid_t v = trail[i - 1].v;
        const std::uint8_t from = b.side[v];
        b.side_weight[from] -= vw(v);
        b.side_weight[1 - from] += vw(v);
        b.side[v] = 1 - from;
    }
    // Recompute the cut exactly after rollback; incremental tracking of
    // floating-point gains can drift over a long pass.
    b.cut = make_bisection(g, vweight, b.side).cut;
    return std::max(0.0, cut_before - b.cut);
}

void
fm_refine(const Csr& g, const std::vector<double>& vweight, Bisection& b,
          double target0, double imbalance, int max_passes)
{
    double prev = b.cut;
    for (int p = 0; p < max_passes; ++p) {
        fm_refine_pass(g, vweight, b, target0, imbalance);
        if (b.cut >= prev - 1e-9)
            break;
        prev = b.cut;
    }
}

} // namespace graphorder
