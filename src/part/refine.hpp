/**
 * @file
 * Fiduccia–Mattheyses boundary refinement of a bisection, the iterative
 * refinement step of the multilevel scheme (paper cites Kernighan–Lin).
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace graphorder {

/** State of a 2-way partition under refinement. */
struct Bisection
{
    /** side[v] in {0, 1}. */
    std::vector<std::uint8_t> side;
    /** Sum of vertex weights on each side. */
    double side_weight[2] = {0, 0};
    /** Total weight of edges crossing the cut. */
    double cut = 0;
};

/** Compute cut and side weights of @p side from scratch. */
Bisection make_bisection(const Csr& g, const std::vector<double>& vweight,
                         std::vector<std::uint8_t> side);

/**
 * One FM pass: repeatedly move the best-gain movable boundary vertex,
 * allowing negative-gain moves, then roll back to the best prefix seen.
 *
 * @param vweight vertex weights (coarse vertices carry fine counts).
 * @param target0 desired weight of side 0.
 * @param imbalance allowed relative deviation from target (e.g. 0.05).
 * @param max_moves cap on moves per pass (0 = n).
 * @return cut improvement achieved (>= 0).
 */
double fm_refine_pass(const Csr& g, const std::vector<double>& vweight,
                      Bisection& b, double target0, double imbalance,
                      std::size_t max_moves = 0);

/** Run FM passes until no improvement (at most @p max_passes). */
void fm_refine(const Csr& g, const std::vector<double>& vweight,
               Bisection& b, double target0, double imbalance,
               int max_passes = 8);

} // namespace graphorder
