/**
 * @file
 * Influence maximization via IMM (Tang, Shi, Xiao — SIGMOD 2015), the
 * algorithm behind Ripples, the application profiled in §VI-C of the
 * paper.
 *
 * The core computational task — and the paper's profiling hotspot — is
 * Sampling: generating a large collection of Reverse Reachability (RRR)
 * sets by running stochastic BFS traversals from random roots.  Under the
 * Independent Cascade model each edge is crossed with probability p (the
 * paper reports p = 0.25); under the Linear Threshold model each step
 * follows a single uniformly chosen neighbor.  Seeds are selected by
 * lazy-greedy (CELF) maximum coverage over the RRR sets — see rrr.hpp
 * for the arena / coverage-index / CELF selection engine — with IMM's
 * martingale-based stopping rule deciding how many sets are needed.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "influence/rrr.hpp"

namespace graphorder {

class AccessTracer;

/** Diffusion process simulated during sampling. */
enum class DiffusionModel
{
    IndependentCascade, ///< each edge activates independently with prob. p
    LinearThreshold,    ///< uniform edge weights 1/deg(v)
};

/** IMM options. */
struct ImmOptions
{
    vid_t num_seeds = 20;          ///< k, size of the seed set
    double epsilon = 0.5;          ///< approximation slack of IMM
    double ell = 1.0;              ///< failure-probability exponent (n^-ell)
    double edge_probability = 0.25;///< IC activation probability
    DiffusionModel model = DiffusionModel::IndependentCascade;
    int num_threads = 0;           ///< 0 = shared --threads knob
    std::uint64_t seed = 2020;
    /** Cap on RRR sets (safety valve for tiny epsilon on big graphs). */
    std::uint64_t max_samples = 1ULL << 22;
    /**
     * Optional tracer replaying the RRR-generation hotspot loads
     * (frontier pops, adjacency scans, visited-flag probes) and the
     * CELF coverage scans (index entries, covered flags) into the
     * cache simulator; forces single-threaded sampling.
     */
    AccessTracer* tracer = nullptr;
};

/** Counters matching the paper's Figures 11/12 measurements. */
struct ImmStats
{
    std::uint64_t num_rrr_sets = 0;
    std::uint64_t total_visited = 0;  ///< sum of RRR set sizes
    double sampling_time_s = 0;
    double selection_time_s = 0;
    double total_time_s = 0;
    double estimated_spread = 0;      ///< expected influence of the seeds

    /** RRR sets generated per second — the paper's throughput metric. */
    double sampling_throughput() const
    {
        return sampling_time_s > 0 ? num_rrr_sets / sampling_time_s : 0.0;
    }
};

/** Result of an IMM run. */
struct ImmResult
{
    std::vector<vid_t> seeds;
    ImmStats stats;
};

/**
 * Run IMM on an undirected graph.  May return fewer than k seeds when
 * the sampled sets are exhausted (every additional seed would have zero
 * marginal coverage).
 */
ImmResult imm(const Csr& g, const ImmOptions& opt = {});

/**
 * Generate @p count RRR sets, appended to the tail of @p arena; exposed
 * for tests and for throughput-only benchmarking without the full IMM
 * loop.  Each sample's RNG stream is keyed by `stream_offset + i`, so
 * the arena contents are bit-identical at any thread count and an
 * arena grown over several calls (with consecutive stream offsets)
 * equals one built by a single call.
 */
void sample_rrr_sets(const Csr& g, const ImmOptions& opt,
                     std::uint64_t count, RrrArena& arena,
                     std::uint64_t stream_offset = 0);

/**
 * Reference exact-greedy maximum coverage: pick up to @p k vertices
 * covering the most RRR sets, ties to the smallest vertex id, stopping
 * early once the best residual gain is zero (so a vertex is never
 * selected twice).  Serial and simple on purpose — this is the
 * baseline celf_select() is held byte-identical to.
 * @param[out] covered_fraction fraction of sets covered by the result.
 */
std::vector<vid_t> greedy_max_coverage(
    vid_t num_vertices, const std::vector<std::vector<vid_t>>& sets,
    vid_t k, double* covered_fraction = nullptr);

/**
 * Monte-Carlo forward simulation of the IC process — ground truth for
 * tests: expected number of vertices activated by @p seeds.  Trials run
 * in parallel (shared --threads/GRAPHORDER_THREADS knob) on per-trial
 * seeded RNG streams; the spread is a chunk-ordered reduction, so the
 * result is bit-identical at any thread count.
 */
double simulate_ic_spread(const Csr& g, const std::vector<vid_t>& seeds,
                          double p, int trials, std::uint64_t seed);

} // namespace graphorder
