#include "influence/rrr.hpp"

#include <algorithm>
#include <cassert>

#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace graphorder {

std::vector<std::vector<vid_t>>
RrrArena::as_sets() const
{
    std::vector<std::vector<vid_t>> sets(num_sets());
    for (std::uint64_t s = 0; s < num_sets(); ++s)
        sets[s].assign(set_begin(s), set_end(s));
    return sets;
}

RrrArena
RrrArena::from_sets(const std::vector<std::vector<vid_t>>& sets)
{
    RrrArena arena;
    arena.offsets.reserve(sets.size() + 1);
    for (const auto& s : sets) {
        arena.vertices.insert(arena.vertices.end(), s.begin(), s.end());
        arena.offsets.push_back(arena.vertices.size());
    }
    return arena;
}

void
CoverageIndex::reset(vid_t num_vertices)
{
    n_ = num_vertices;
    indexed_sets_ = 0;
    count_.assign(n_, 0);
    segments_.clear();
}

void
CoverageIndex::extend(const RrrArena& arena)
{
    const std::uint64_t s0 = indexed_sets_;
    const std::uint64_t s1 = arena.num_sets();
    if (s1 <= s0 || n_ == 0)
        return;
    GO_TRACE_SCOPE("imm/index_extend");
    const std::uint64_t e0 = arena.offsets[s0];
    const std::uint64_t total = arena.offsets[s1] - e0;

    Segment seg;
    seg.offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
    seg.sets.resize(total);

    if (total != 0) {
        // Direct deterministic counting scatter — the same stable sort
        // stable_order_by_key computes, specialized so neither the
        // permutation nor an entry->set array is materialized (both are
        // O(total); entries dwarf vertices here).  Per-block vertex
        // histograms over the new entries, a (vertex-major,
        // block-minor) exclusive scan giving every block a private
        // scatter cursor per vertex, then an in-index-order scatter of
        // the owning set ids: block boundaries depend only on (total,
        // n_), so the layout is bit-identical at any thread count, and
        // within a vertex the ids ascend (blocks scan ascending entry
        // positions, and the arena only grows at the tail).
        std::size_t grain = std::size_t{1} << 14;
        if (grain < n_ / 4) // keep the histogram table ~4x the input
            grain = n_ / 4;
        const std::size_t nb = num_blocks(total, grain, 64);
        std::vector<std::uint64_t> hist(nb * n_, 0);
        #pragma omp parallel for num_threads(default_threads()) \
            schedule(static)
        for (std::size_t b = 0; b < nb; ++b) {
            const auto [lo, hi] = block_range(total, nb, b);
            std::uint64_t* h = hist.data() + b * n_;
            for (std::size_t e = lo; e < hi; ++e)
                ++h[arena.vertices[e0 + e]];
        }
        std::uint64_t run = 0;
        for (vid_t v = 0; v < n_; ++v) {
            seg.offsets[v] = run;
            for (std::size_t b = 0; b < nb; ++b) {
                std::uint64_t& cell = hist[b * n_ + v];
                const std::uint64_t c = cell;
                cell = run;
                run += c;
            }
        }
        seg.offsets[n_] = total;
        #pragma omp parallel for num_threads(default_threads()) \
            schedule(static)
        for (std::size_t b = 0; b < nb; ++b) {
            const auto [lo, hi] = block_range(total, nb, b);
            std::uint64_t* cur = hist.data() + b * n_;
            // Owning set of the block's first entry; sets are
            // contiguous in the arena, so a forward walk tracks it.
            std::uint64_t s = static_cast<std::uint64_t>(
                std::upper_bound(arena.offsets.begin() + s0,
                                 arena.offsets.begin() + s1 + 1, e0 + lo)
                - arena.offsets.begin() - 1);
            for (std::size_t e = lo; e < hi; ++e) {
                while (e0 + e >= arena.offsets[s + 1])
                    ++s;
                seg.sets[cur[arena.vertices[e0 + e]]++] =
                    static_cast<std::uint32_t>(s);
            }
        }
    }

    // Initial CELF gains: parallel reduction of the slice widths.
    #pragma omp parallel for num_threads(default_threads()) \
        schedule(static)
    for (vid_t v = 0; v < n_; ++v)
        count_[v] += static_cast<std::uint32_t>(seg.offsets[v + 1]
                                                - seg.offsets[v]);

    indexed_sets_ = s1;
    segments_.push_back(std::move(seg));

    static obs::CachedCounter c_segments{"imm/index_segments"};
    static obs::CachedCounter c_entries{"imm/index_entries"};
    c_segments.add();
    c_entries.add(total);
}

namespace {

/** CELF heap entry: a cached (possibly stale) marginal-gain bound. */
struct CelfEntry
{
    std::uint32_t gain;  ///< upper bound on the marginal gain
    vid_t vertex;
    std::uint32_t stamp; ///< seeds selected when the gain was computed
};

/**
 * Max-heap order: largest gain first, ties broken by smallest vertex
 * id.  Stale bounds dominate fresh gains of equal value, so an
 * equal-gain smaller-id candidate is always re-examined before a larger
 * id is selected — the property that makes CELF byte-identical to
 * exact greedy.
 */
struct CelfLess
{
    bool operator()(const CelfEntry& a, const CelfEntry& b) const
    {
        if (a.gain != b.gain)
            return a.gain < b.gain;
        return a.vertex > b.vertex;
    }
};

} // namespace

std::vector<vid_t>
celf_select(const RrrArena& arena, const CoverageIndex& index, vid_t k,
            double* covered_fraction, SelectionStats* stats,
            AccessTracer* tracer)
{
    assert(index.num_indexed_sets() == arena.num_sets());
    const vid_t n = index.num_vertices();
    const std::uint64_t num_sets = arena.num_sets();
    SelectionStats local;
    std::vector<vid_t> seeds;
    if (n == 0 || k == 0 || num_sets == 0) {
        if (covered_fraction)
            *covered_fraction = 0.0;
        if (stats)
            *stats = local;
        return seeds;
    }
    seeds.reserve(std::min<std::uint64_t>(k, n));

    // Every vertex enters with its exact round-0 gain (its set count).
    const auto& counts = index.counts();
    std::vector<CelfEntry> heap;
    heap.reserve(n);
    for (vid_t v = 0; v < n; ++v)
        if (counts[v] > 0)
            heap.push_back({counts[v], v, 0});
    std::make_heap(heap.begin(), heap.end(), CelfLess{});

    std::vector<std::uint8_t> covered(num_sets, 0);
    while (seeds.size() < k && !heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), CelfLess{});
        CelfEntry e = heap.back();
        heap.pop_back();
        ++local.heap_pops;

        if (e.stamp == seeds.size()) {
            // Fresh gain: e.vertex is the exact greedy choice.  Zero
            // means residual coverage is exhausted — stop early rather
            // than emit arbitrary filler seeds.
            if (e.gain == 0)
                break;
            index.for_each_set(e.vertex, [&](const std::uint32_t& s) {
                if (tracer) {
                    tracer->load(&s, sizeof(std::uint32_t));
                    tracer->load(&covered[s], sizeof(std::uint8_t));
                }
                if (!covered[s]) {
                    covered[s] = 1;
                    ++local.covered_sets;
                }
            });
            seeds.push_back(e.vertex);
        } else {
            // Stale bound: recompute against current coverage and
            // reinsert; submodularity guarantees gains only shrink.
            std::uint32_t gain = 0;
            index.for_each_set(e.vertex, [&](const std::uint32_t& s) {
                if (tracer) {
                    tracer->load(&s, sizeof(std::uint32_t));
                    tracer->load(&covered[s], sizeof(std::uint8_t));
                }
                gain += covered[s] == 0;
            });
            ++local.lazy_reevals;
            e.gain = gain;
            e.stamp = static_cast<std::uint32_t>(seeds.size());
            heap.push_back(e);
            std::push_heap(heap.begin(), heap.end(), CelfLess{});
        }
    }

    if (covered_fraction)
        *covered_fraction = static_cast<double>(local.covered_sets)
            / static_cast<double>(num_sets);
    if (stats)
        *stats = local;
    return seeds;
}

} // namespace graphorder
