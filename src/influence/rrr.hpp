/**
 * @file
 * The IMM selection engine: flat RRR-set arena, incremental parallel
 * coverage index, and lazy-greedy (CELF) seed selection.
 *
 * The three pieces replace the old `vector<vector<vid_t>>` set storage
 * and the serial O(k·n) greedy loop:
 *
 *  - RrrArena — RRR sets stored CSR-style (`offsets` + `vertices`),
 *    appended across martingale rounds without relaying existing data.
 *  - CoverageIndex — the vertex → containing-set inverted index, built
 *    in parallel with the deterministic util/parallel.hpp primitives
 *    and *extended* incrementally: each extend() indexes only the sets
 *    appended since the previous call, as one immutable segment.
 *  - celf_select — lazy-greedy maximum coverage (Leskovec et al.'s
 *    CELF): a max-heap of stale upper bounds on the marginal gains,
 *    re-evaluated only when an entry reaches the top.  Submodularity
 *    makes cached gains upper bounds, so with (gain desc, vertex-id
 *    asc) heap order the selected seeds are byte-identical to exact
 *    greedy under the same tie-break — tests/selection_test.cpp holds
 *    the two implementations to that contract.
 *
 * Determinism: arena layout and index contents depend only on the RNG
 * streams (sample-indexed), never on the thread count; CELF itself is
 * serial over a deterministic index.  Bit-identical at any thread count.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace graphorder {

class AccessTracer;

/**
 * Flat CSR-style storage for RRR sets: set @p s occupies
 * `vertices[offsets[s] .. offsets[s+1])`.  Sampling appends whole
 * rounds at the tail; existing offsets and vertices are never moved.
 */
struct RrrArena
{
    std::vector<std::uint64_t> offsets{0}; ///< num_sets()+1 entries
    std::vector<vid_t> vertices;           ///< concatenated set members

    std::uint64_t num_sets() const { return offsets.size() - 1; }
    std::uint64_t num_entries() const { return vertices.size(); }

    const vid_t* set_begin(std::uint64_t s) const
    {
        return vertices.data() + offsets[s];
    }
    const vid_t* set_end(std::uint64_t s) const
    {
        return vertices.data() + offsets[s + 1];
    }
    std::uint64_t set_size(std::uint64_t s) const
    {
        return offsets[s + 1] - offsets[s];
    }

    void clear()
    {
        offsets.assign(1, 0);
        vertices.clear();
    }

    /** Copy into the legacy nested representation (tests, reference). */
    std::vector<std::vector<vid_t>> as_sets() const;

    /** Build an arena holding @p sets in order. */
    static RrrArena from_sets(const std::vector<std::vector<vid_t>>& sets);

    friend bool operator==(const RrrArena& a, const RrrArena& b)
    {
        return a.offsets == b.offsets && a.vertices == b.vertices;
    }
};

/**
 * Vertex → containing-RRR-set inverted index over an RrrArena.
 *
 * Incremental: extend() indexes the arena sets appended since the last
 * call as one immutable *segment* (per-vertex CSR slices with set ids
 * ascending), so a martingale round costs O(new entries), not a full
 * reindex.  Set ids across segments are globally ascending because the
 * arena only grows at the tail.  The per-vertex occurrence counts —
 * CELF's initial gains — are maintained by parallel reduction.
 *
 * Built on stable_order_by_key / exclusive_prefix_sum, so contents are
 * bit-identical at any thread count.
 */
class CoverageIndex
{
  public:
    /** Drop all segments and counts; future extends index for a graph
     *  with @p num_vertices vertices. */
    void reset(vid_t num_vertices);

    /** Index arena sets [num_indexed_sets(), arena.num_sets()). */
    void extend(const RrrArena& arena);

    vid_t num_vertices() const { return n_; }
    std::uint64_t num_indexed_sets() const { return indexed_sets_; }
    std::size_t num_segments() const { return segments_.size(); }

    /** Sets containing each vertex — CELF's initial marginal gains. */
    const std::vector<std::uint32_t>& counts() const { return count_; }

    /**
     * Visit the id of every indexed set containing @p v, in ascending
     * set-id order.  @p fn receives a const reference into the index so
     * callers replaying loads into the cache simulator can take its
     * address.
     */
    template <typename Fn>
    void for_each_set(vid_t v, Fn&& fn) const
    {
        for (const auto& seg : segments_) {
            const std::uint64_t lo = seg.offsets[v];
            const std::uint64_t hi = seg.offsets[v + 1];
            for (std::uint64_t j = lo; j < hi; ++j)
                fn(seg.sets[j]);
        }
    }

  private:
    /** One extend() batch: per-vertex slices of ascending set ids. */
    struct Segment
    {
        std::vector<std::uint64_t> offsets; ///< n+1 entries
        std::vector<std::uint32_t> sets;    ///< set ids, ascending per v
    };

    vid_t n_ = 0;
    std::uint64_t indexed_sets_ = 0;
    std::vector<std::uint32_t> count_;
    std::vector<Segment> segments_;
};

/** Work counters of one celf_select() run. */
struct SelectionStats
{
    std::uint64_t heap_pops = 0;    ///< entries popped (fresh + stale)
    std::uint64_t lazy_reevals = 0; ///< stale gains recomputed
    std::uint64_t covered_sets = 0; ///< sets covered by the seeds
};

/**
 * CELF seed selection: pick up to @p k vertices maximizing RRR-set
 * coverage, stopping early once the best residual gain is zero.  The
 * result is byte-identical to exact greedy with (gain desc, vertex-id
 * asc) tie-breaking.  @p index must cover every arena set.
 *
 * @param[out] covered_fraction fraction of sets covered (optional).
 * @param[out] stats            work counters (optional).
 * @param tracer                optional cache-simulator tracer; replays
 *                              the coverage-scan loads (index entries
 *                              and covered flags) at their real
 *                              addresses.
 */
std::vector<vid_t> celf_select(const RrrArena& arena,
                               const CoverageIndex& index, vid_t k,
                               double* covered_fraction = nullptr,
                               SelectionStats* stats = nullptr,
                               AccessTracer* tracer = nullptr);

} // namespace graphorder
