#include "influence/imm.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace graphorder {

namespace {

/**
 * One RRR set: stochastic reverse BFS from @p root.  On an undirected
 * graph reverse reachability equals forward reachability, so this is a
 * BFS where, under IC, each edge is crossed with probability p, and under
 * LT each visited vertex follows exactly one uniformly random neighbor.
 */
void
generate_rrr(const Csr& g, const ImmOptions& opt, vid_t root, Rng& rng,
             std::vector<vid_t>& out, std::vector<std::uint32_t>& visited,
             std::uint32_t stamp, AccessTracer* tracer)
{
    out.clear();
    if (opt.model == DiffusionModel::LinearThreshold) {
        // Random walk until a repeat: each step picks one in-neighbor.
        vid_t cur = root;
        visited[cur] = stamp;
        out.push_back(cur);
        while (true) {
            const auto nbrs = g.neighbors(cur);
            if (tracer)
                tracer->load(&visited[cur], sizeof(std::uint32_t));
            if (nbrs.empty())
                break;
            const std::size_t pick = rng.next_below(nbrs.size());
            const vid_t nxt = nbrs[pick];
            if (tracer)
                tracer->load(&nbrs[pick], sizeof(vid_t));
            if (visited[nxt] == stamp)
                break;
            visited[nxt] = stamp;
            out.push_back(nxt);
            cur = nxt;
        }
        return;
    }

    // Independent Cascade: probabilistic BFS.
    std::size_t head = 0;
    visited[root] = stamp;
    out.push_back(root);
    while (head < out.size()) {
        const vid_t v = out[head++];
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const vid_t u = nbrs[i];
            if (tracer) {
                tracer->load(&nbrs[i], sizeof(vid_t));
                tracer->load(&visited[u], sizeof(std::uint32_t));
            }
            if (visited[u] == stamp)
                continue;
            if (rng.next_double() < opt.edge_probability) {
                visited[u] = stamp;
                out.push_back(u);
            }
        }
    }
}

double
log_binomial(double n, double k)
{
    return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

} // namespace

void
sample_rrr_sets(const Csr& g, const ImmOptions& opt, std::uint64_t count,
                std::vector<std::vector<vid_t>>& sets,
                std::uint64_t stream_offset)
{
    const vid_t n = g.num_vertices();
    if (n == 0 || count == 0)
        return;
    GO_TRACE_SCOPE("imm/sample_rrr_sets");
    const std::size_t base = sets.size();
    sets.resize(base + count);

    const bool traced = opt.tracer != nullptr;
    // opt.num_threads == 0 falls back to the shared --threads /
    // GRAPHORDER_THREADS knob (util/parallel.hpp).
    const int threads = traced ? 1 : resolve_threads(opt.num_threads);

    #pragma omp parallel num_threads(threads)
    {
        // Per-thread deterministic stream: sample index keys the RNG, so
        // results are independent of scheduling and thread count.
        std::vector<std::uint32_t> visited(n, 0);
        std::uint32_t stamp = 0;
        std::vector<vid_t> scratch;

        #pragma omp for schedule(dynamic, 64)
        for (std::uint64_t i = 0; i < count; ++i) {
            Rng rng(opt.seed ^ (0x9E3779B97F4A7C15ULL
                                * (stream_offset + i + 1)));
            ++stamp;
            if (stamp == 0) { // wrapped: reset the stamp array
                std::fill(visited.begin(), visited.end(), 0);
                stamp = 1;
            }
            const vid_t root = static_cast<vid_t>(rng.next_below(n));
            generate_rrr(g, opt, root, rng, scratch, visited, stamp,
                         opt.tracer);
            sets[base + i] = scratch;
        }
    }

    std::uint64_t visited_total = 0;
    for (std::size_t i = base; i < base + count; ++i)
        visited_total += sets[i].size();
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("imm/rrr_sets").add(count);
    reg.counter("imm/rrr_visited").add(visited_total);
}

std::vector<vid_t>
greedy_max_coverage(vid_t num_vertices,
                    const std::vector<std::vector<vid_t>>& sets, vid_t k,
                    double* covered_fraction)
{
    // Inverted index: vertex -> ids of RRR sets containing it.
    std::vector<std::uint32_t> count(num_vertices, 0);
    for (const auto& s : sets)
        for (vid_t v : s)
            ++count[v];
    std::vector<std::vector<std::uint32_t>> index(num_vertices);
    for (std::uint32_t si = 0; si < sets.size(); ++si)
        for (vid_t v : sets[si])
            index[v].push_back(si);

    std::vector<std::uint8_t> set_covered(sets.size(), 0);
    std::vector<vid_t> seeds;
    std::uint64_t covered = 0;
    for (vid_t round = 0; round < k && round < num_vertices; ++round) {
        vid_t best = 0;
        for (vid_t v = 1; v < num_vertices; ++v)
            if (count[v] > count[best])
                best = v;
        seeds.push_back(best);
        for (std::uint32_t si : index[best]) {
            if (set_covered[si])
                continue;
            set_covered[si] = 1;
            ++covered;
            for (vid_t u : sets[si])
                --count[u];
        }
    }
    if (covered_fraction) {
        *covered_fraction = sets.empty()
            ? 0.0
            : static_cast<double>(covered)
                / static_cast<double>(sets.size());
    }
    return seeds;
}

ImmResult
imm(const Csr& g, const ImmOptions& opt)
{
    GO_TRACE_SCOPE("imm/run");
    ImmResult result;
    const vid_t n = g.num_vertices();
    if (n == 0)
        return result;
    const vid_t k = std::min<vid_t>(std::max<vid_t>(opt.num_seeds, 1), n);

    Timer total;
    total.start();

    const double dn = static_cast<double>(n);
    const double eps = opt.epsilon;
    const double eps_p = eps * std::sqrt(2.0);
    const double log_n = std::log(dn);
    const double log_nk = log_binomial(dn, k);

    // lambda' of Tang et al. (Eq. 9), driving the LB estimation rounds.
    const double lambda_p = (2.0 + 2.0 / 3.0 * eps_p)
        * (log_nk + opt.ell * log_n + std::log(std::max(
               1.0, std::log2(dn))))
        * dn / (eps_p * eps_p);

    std::vector<std::vector<vid_t>> sets;
    double lb = 1.0;
    Timer sampling;
    sampling.start();
    double sampling_time = 0.0;

    const int max_rounds =
        std::max(1, static_cast<int>(std::log2(std::max(2.0, dn))) - 1);
    auto& round_counter =
        obs::MetricsRegistry::instance().counter("imm/sampling_rounds");
    for (int i = 1; i <= max_rounds; ++i) {
        GO_TRACE_SCOPE("imm/round/" + std::to_string(i));
        round_counter.add();
        const double x = dn / std::pow(2.0, i);
        const auto theta_i = static_cast<std::uint64_t>(
            std::min(static_cast<double>(opt.max_samples),
                     std::ceil(lambda_p / x)));
        if (sets.size() < theta_i) {
            sampling.start();
            sample_rrr_sets(g, opt, theta_i - sets.size(), sets,
                            sets.size());
            sampling_time += sampling.elapsed_s();
        }
        double frac = 0.0;
        greedy_max_coverage(n, sets, k, &frac);
        if (dn * frac >= (1.0 + eps_p) * x) {
            lb = dn * frac / (1.0 + eps_p);
            break;
        }
        lb = std::max(lb, x / 2.0); // loop exhausted: fall back to x
    }

    // lambda* of Tang et al. (Eq. 6): final sample count theta.
    const double e_const = std::exp(1.0);
    const double alpha = std::sqrt(opt.ell * log_n + std::log(2.0));
    const double beta = std::sqrt(
        (1.0 - 1.0 / e_const) * (log_nk + opt.ell * log_n + std::log(2.0)));
    const double lambda_star = 2.0 * dn
        * std::pow((1.0 - 1.0 / e_const) * alpha + beta, 2.0)
        / (eps * eps);
    const auto theta = static_cast<std::uint64_t>(
        std::min(static_cast<double>(opt.max_samples),
                 std::ceil(lambda_star / lb)));
    if (sets.size() < theta) {
        sampling.start();
        sample_rrr_sets(g, opt, theta - sets.size(), sets, sets.size());
        sampling_time += sampling.elapsed_s();
    }

    Timer selection;
    selection.start();
    double frac = 0.0;
    {
        GO_TRACE_SCOPE("imm/selection");
        result.seeds = greedy_max_coverage(n, sets, k, &frac);
    }
    result.stats.selection_time_s = selection.elapsed_s();

    result.stats.num_rrr_sets = sets.size();
    for (const auto& s : sets)
        result.stats.total_visited += s.size();
    result.stats.sampling_time_s = sampling_time;
    result.stats.estimated_spread = dn * frac;
    result.stats.total_time_s = total.elapsed_s();
    obs::MetricsRegistry::instance()
        .gauge("imm/estimated_spread")
        .set(result.stats.estimated_spread);
    return result;
}

double
simulate_ic_spread(const Csr& g, const std::vector<vid_t>& seeds, double p,
                   int trials, std::uint64_t seed)
{
    const vid_t n = g.num_vertices();
    if (n == 0 || seeds.empty() || trials <= 0)
        return 0.0;
    Rng rng(seed);
    std::vector<std::uint32_t> visited(n, 0);
    std::uint32_t stamp = 0;
    std::vector<vid_t> frontier;
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
        ++stamp;
        frontier.clear();
        for (vid_t s : seeds) {
            if (visited[s] != stamp) {
                visited[s] = stamp;
                frontier.push_back(s);
            }
        }
        std::size_t head = 0;
        while (head < frontier.size()) {
            const vid_t v = frontier[head++];
            for (vid_t u : g.neighbors(v)) {
                if (visited[u] != stamp && rng.next_double() < p) {
                    visited[u] = stamp;
                    frontier.push_back(u);
                }
            }
        }
        total += static_cast<double>(frontier.size());
    }
    return total / trials;
}

} // namespace graphorder
