#include "influence/imm.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "memsim/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/faultpoint.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace graphorder {

namespace {

FaultPoint fp_imm_round{
    "imm.round", StatusCode::Internal,
    "IMM aborts at a martingale-round boundary as if sampling failed"};

/** Multiplier keying per-sample / per-trial RNG streams off the index. */
constexpr std::uint64_t kStreamMix = 0x9E3779B97F4A7C15ULL;

/**
 * One RRR set: stochastic reverse BFS from @p root.  On an undirected
 * graph reverse reachability equals forward reachability, so this is a
 * BFS where, under IC, each edge is crossed with probability p, and under
 * LT each visited vertex follows exactly one uniformly random neighbor.
 */
void
generate_rrr(const Csr& g, const ImmOptions& opt, vid_t root, Rng& rng,
             std::vector<vid_t>& out, std::vector<std::uint32_t>& visited,
             std::uint32_t stamp, AccessTracer* tracer)
{
    out.clear();
    if (opt.model == DiffusionModel::LinearThreshold) {
        // Random walk until a repeat: each step picks one in-neighbor.
        vid_t cur = root;
        visited[cur] = stamp;
        out.push_back(cur);
        while (true) {
            const auto nbrs = g.neighbors(cur);
            if (tracer)
                tracer->load(&visited[cur], sizeof(std::uint32_t));
            if (nbrs.empty())
                break;
            const std::size_t pick = rng.next_below(nbrs.size());
            const vid_t nxt = nbrs[pick];
            if (tracer)
                tracer->load(&nbrs[pick], sizeof(vid_t));
            if (visited[nxt] == stamp)
                break;
            visited[nxt] = stamp;
            out.push_back(nxt);
            cur = nxt;
        }
        return;
    }

    // Independent Cascade: probabilistic BFS.
    std::size_t head = 0;
    visited[root] = stamp;
    out.push_back(root);
    while (head < out.size()) {
        const vid_t v = out[head++];
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const vid_t u = nbrs[i];
            if (tracer) {
                tracer->load(&nbrs[i], sizeof(vid_t));
                tracer->load(&visited[u], sizeof(std::uint32_t));
            }
            if (visited[u] == stamp)
                continue;
            if (rng.next_double() < opt.edge_probability) {
                visited[u] = stamp;
                out.push_back(u);
            }
        }
    }
}

double
log_binomial(double n, double k)
{
    return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

} // namespace

void
sample_rrr_sets(const Csr& g, const ImmOptions& opt, std::uint64_t count,
                RrrArena& arena, std::uint64_t stream_offset)
{
    const vid_t n = g.num_vertices();
    if (n == 0 || count == 0)
        return;
    GO_TRACE_SCOPE("imm/sample_rrr_sets");

    const bool traced = opt.tracer != nullptr;
    // opt.num_threads == 0 falls back to the shared --threads /
    // GRAPHORDER_THREADS knob (util/parallel.hpp).
    const int threads = traced ? 1 : resolve_threads(opt.num_threads);

    // Block decomposition of the sample range: blocks generate into
    // private flat buffers that are concatenated into the arena in
    // block order, so the layout depends only on the per-sample RNG
    // streams — bit-identical at any thread count.
    const std::size_t cnt = static_cast<std::size_t>(count);
    const std::size_t nb = num_blocks(cnt, 16);
    std::vector<std::vector<vid_t>> blockbuf(nb);
    std::vector<std::uint64_t> sizes(cnt);

    #pragma omp parallel num_threads(threads)
    {
        // Per-thread stamped visited array + scratch, reused across all
        // blocks the thread draws.
        std::vector<std::uint32_t> visited(n, 0);
        std::uint32_t stamp = 0;
        std::vector<vid_t> scratch;

        #pragma omp for schedule(dynamic, 1)
        for (std::size_t b = 0; b < nb; ++b) {
            const auto [lo, hi] = block_range(cnt, nb, b);
            auto& buf = blockbuf[b];
            for (std::size_t i = lo; i < hi; ++i) {
                // Sample-indexed stream: results are independent of
                // scheduling and thread count.
                Rng rng(opt.seed ^ (kStreamMix * (stream_offset + i + 1)));
                ++stamp;
                if (stamp == 0) { // wrapped: reset the stamp array
                    std::fill(visited.begin(), visited.end(), 0);
                    stamp = 1;
                }
                const vid_t root =
                    static_cast<vid_t>(rng.next_below(n));
                generate_rrr(g, opt, root, rng, scratch, visited, stamp,
                             opt.tracer);
                sizes[i] = scratch.size();
                buf.insert(buf.end(), scratch.begin(), scratch.end());
            }
        }
    }

    // Lay the new sets out at the arena tail: exclusive scan of the
    // sizes gives every sample its slot, then blocks copy in parallel.
    std::vector<std::uint64_t> pos(sizes);
    const std::uint64_t added = exclusive_prefix_sum(pos);
    const std::uint64_t base_entry = arena.vertices.size();
    const std::size_t base_off = arena.offsets.size();
    arena.offsets.resize(base_off + cnt);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t i = 0; i < cnt; ++i)
        arena.offsets[base_off + i] = base_entry + pos[i] + sizes[i];
    arena.vertices.resize(base_entry + added);
    #pragma omp parallel for num_threads(threads) schedule(static)
    for (std::size_t b = 0; b < nb; ++b) {
        const auto [lo, hi] = block_range(cnt, nb, b);
        if (lo < hi)
            std::copy(blockbuf[b].begin(), blockbuf[b].end(),
                      arena.vertices.begin()
                          + static_cast<std::size_t>(base_entry + pos[lo]));
    }

    static obs::CachedCounter c_rrr_sets{"imm/rrr_sets"};
    static obs::CachedCounter c_rrr_visited{"imm/rrr_visited"};
    c_rrr_sets.add(count);
    c_rrr_visited.add(added);
}

std::vector<vid_t>
greedy_max_coverage(vid_t num_vertices,
                    const std::vector<std::vector<vid_t>>& sets, vid_t k,
                    double* covered_fraction)
{
    // Inverted index: vertex -> ids of RRR sets containing it.
    std::vector<std::uint32_t> count(num_vertices, 0);
    for (const auto& s : sets)
        for (vid_t v : s)
            ++count[v];
    std::vector<std::vector<std::uint32_t>> index(num_vertices);
    for (std::uint32_t si = 0; si < sets.size(); ++si)
        for (vid_t v : sets[si])
            index[v].push_back(si);

    std::vector<std::uint8_t> set_covered(sets.size(), 0);
    std::vector<std::uint8_t> chosen(num_vertices, 0);
    std::vector<vid_t> seeds;
    std::uint64_t covered = 0;
    for (vid_t round = 0; round < k && round < num_vertices; ++round) {
        // Lowest id among the unchosen maxima — the tie-break CELF
        // reproduces.
        vid_t best = kNoVertex;
        std::uint32_t best_count = 0;
        for (vid_t v = 0; v < num_vertices; ++v)
            if (!chosen[v] && count[v] > best_count) {
                best = v;
                best_count = count[v];
            }
        // Residual coverage exhausted: stop instead of emitting
        // arbitrary (duplicate) filler seeds.
        if (best == kNoVertex)
            break;
        chosen[best] = 1;
        seeds.push_back(best);
        for (std::uint32_t si : index[best]) {
            if (set_covered[si])
                continue;
            set_covered[si] = 1;
            ++covered;
            for (vid_t u : sets[si])
                --count[u];
        }
    }
    if (covered_fraction) {
        *covered_fraction = sets.empty()
            ? 0.0
            : static_cast<double>(covered)
                / static_cast<double>(sets.size());
    }
    return seeds;
}

ImmResult
imm(const Csr& g, const ImmOptions& opt)
{
    GO_TRACE_SCOPE("imm/run");
    ImmResult result;
    const vid_t n = g.num_vertices();
    if (n == 0)
        return result;
    const vid_t k = std::min<vid_t>(std::max<vid_t>(opt.num_seeds, 1), n);

    Timer total;
    total.start();

    const double dn = static_cast<double>(n);
    const double eps = opt.epsilon;
    const double eps_p = eps * std::sqrt(2.0);
    const double log_n = std::log(dn);
    const double log_nk = log_binomial(dn, k);

    // lambda' of Tang et al. (Eq. 9), driving the LB estimation rounds.
    const double lambda_p = (2.0 + 2.0 / 3.0 * eps_p)
        * (log_nk + opt.ell * log_n + std::log(std::max(
               1.0, std::log2(dn))))
        * dn / (eps_p * eps_p);

    auto& reg = obs::MetricsRegistry::instance();
    auto& round_counter = reg.counter("imm/sampling_rounds");
    auto& sel_runs = reg.counter("imm/selection_runs");
    auto& sel_pops = reg.counter("imm/selection_heap_pops");
    auto& sel_reevals = reg.counter("imm/selection_lazy_reevals");
    auto& sel_hist = reg.histogram("imm/selection_time_s");

    RrrArena arena;
    CoverageIndex index;
    index.reset(n);

    // One CELF pass over everything sampled so far; the index has been
    // extended incrementally, never rebuilt.
    const auto select = [&](double* frac) {
        GO_TRACE_SCOPE("imm/selection");
        Timer t;
        t.start();
        SelectionStats st;
        auto seeds = celf_select(arena, index, k, frac, &st, opt.tracer);
        sel_runs.add();
        sel_pops.add(st.heap_pops);
        sel_reevals.add(st.lazy_reevals);
        sel_hist.observe(t.elapsed_s());
        return seeds;
    };

    double lb = 1.0;
    Timer sampling;
    double sampling_time = 0.0;

    const int max_rounds =
        std::max(1, static_cast<int>(std::log2(std::max(2.0, dn))) - 1);
    for (int i = 1; i <= max_rounds; ++i) {
        GO_TRACE_SCOPE("imm/round/" + std::to_string(i));
        fp_imm_round.maybe_fire();
        checkpoint("imm/round");
        round_counter.add();
        const double x = dn / std::pow(2.0, i);
        const auto theta_i = static_cast<std::uint64_t>(
            std::min(static_cast<double>(opt.max_samples),
                     std::ceil(lambda_p / x)));
        if (arena.num_sets() < theta_i) {
            sampling.start();
            sample_rrr_sets(g, opt, theta_i - arena.num_sets(), arena,
                            arena.num_sets());
            sampling_time += sampling.elapsed_s();
        }
        index.extend(arena);
        double frac = 0.0;
        select(&frac);
        if (dn * frac >= (1.0 + eps_p) * x) {
            lb = dn * frac / (1.0 + eps_p);
            break;
        }
        lb = std::max(lb, x / 2.0); // loop exhausted: fall back to x
    }

    // lambda* of Tang et al. (Eq. 6): final sample count theta.
    const double e_const = std::exp(1.0);
    const double alpha = std::sqrt(opt.ell * log_n + std::log(2.0));
    const double beta = std::sqrt(
        (1.0 - 1.0 / e_const) * (log_nk + opt.ell * log_n + std::log(2.0)));
    const double lambda_star = 2.0 * dn
        * std::pow((1.0 - 1.0 / e_const) * alpha + beta, 2.0)
        / (eps * eps);
    const auto theta = static_cast<std::uint64_t>(
        std::min(static_cast<double>(opt.max_samples),
                 std::ceil(lambda_star / lb)));
    if (arena.num_sets() < theta) {
        sampling.start();
        sample_rrr_sets(g, opt, theta - arena.num_sets(), arena,
                        arena.num_sets());
        sampling_time += sampling.elapsed_s();
    }
    index.extend(arena);

    Timer selection;
    selection.start();
    double frac = 0.0;
    result.seeds = select(&frac);
    result.stats.selection_time_s = selection.elapsed_s();

    result.stats.num_rrr_sets = arena.num_sets();
    result.stats.total_visited = arena.num_entries();
    result.stats.sampling_time_s = sampling_time;
    result.stats.estimated_spread = dn * frac;
    result.stats.total_time_s = total.elapsed_s();
    reg.gauge("imm/estimated_spread").set(result.stats.estimated_spread);
    return result;
}

double
simulate_ic_spread(const Csr& g, const std::vector<vid_t>& seeds, double p,
                   int trials, std::uint64_t seed)
{
    const vid_t n = g.num_vertices();
    if (n == 0 || seeds.empty() || trials <= 0)
        return 0.0;
    // Trial-indexed RNG streams + chunk-ordered reduction: the spread
    // is bit-identical at any thread count (shared --threads knob).
    const double total = chunk_ordered_reduce<double>(
        static_cast<std::size_t>(trials), 8,
        [&](std::size_t lo, std::size_t hi) {
            std::vector<std::uint32_t> visited(n, 0);
            std::uint32_t stamp = 0;
            std::vector<vid_t> frontier;
            double acc = 0.0;
            for (std::size_t t = lo; t < hi; ++t) {
                Rng rng(seed ^ (kStreamMix * (t + 1)));
                ++stamp;
                frontier.clear();
                for (vid_t s : seeds) {
                    if (visited[s] != stamp) {
                        visited[s] = stamp;
                        frontier.push_back(s);
                    }
                }
                std::size_t head = 0;
                while (head < frontier.size()) {
                    const vid_t v = frontier[head++];
                    for (vid_t u : g.neighbors(v)) {
                        if (visited[u] != stamp
                            && rng.next_double() < p) {
                            visited[u] = stamp;
                            frontier.push_back(u);
                        }
                    }
                }
                acc += static_cast<double>(frontier.size());
            }
            return acc;
        });
    return total / trials;
}

} // namespace graphorder
