/**
 * @file
 * Scenario: speeding up community detection with vertex reordering — the
 * paper's §VI-B use case as a user-facing pipeline.
 *
 * A data analyst has a social network and wants Louvain communities
 * faster.  The pipeline: run Grappolo-style Louvain once on a (cheap)
 * ordering to *derive* a community-aware ordering, relabel, and run the
 * real analysis on the reordered graph, comparing instrumented phase
 * metrics against the degree-sorted baseline.
 *
 * Run:  ./build/examples/community_pipeline [scale]
 */
#include <cstdio>

#include "community/louvain.hpp"
#include "gen/datasets.hpp"
#include "graph/permutation.hpp"
#include "order/scheme.hpp"
#include "util/table.hpp"

using namespace graphorder;

namespace {

void
report(const char* label, const LouvainResult& res)
{
    const auto& p0 = res.phases.front();
    std::printf("%-10s phase %.3fs  %2d iterations  %.4fs/iter  "
                "work/edge %.2f  work%% %.0f  Q=%.3f  (%u communities)\n",
                label, p0.phase_time_s, p0.iterations,
                p0.avg_iteration_time_s(), p0.work_per_edge,
                100 * p0.work_fraction, res.modularity,
                res.num_communities);
}

} // namespace

int
main(int argc, char** argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 64.0;
    std::printf("community-detection pipeline on the youtube stand-in "
                "(scale 1/%.0f)\n\n",
                scale);
    const Csr g = dataset_by_name("youtube").make(scale);

    // Baseline analyses on natural and degree-sorted layouts.
    report("natural", louvain(g));
    {
        const auto pi = scheme_by_name("degree").run(g, 7);
        report("degree", louvain(apply_permutation(g, pi)));
    }

    // Reordering pipeline: derive a community-aware ordering, relabel,
    // and run the real analysis on the reordered graph.
    const auto pi = scheme_by_name("grappolo").run(g, 7);
    const Csr reordered = apply_permutation(g, pi);
    report("grappolo", louvain(reordered));

    std::printf("\nExpected shape (paper Fig. 9): grappolo ordering has "
                "the fastest iterations,\nbest parallel efficiency and "
                "lowest work/edge; modularity barely moves.\n");
    return 0;
}
