/**
 * @file
 * Scenario: planning a viral-marketing campaign with influence
 * maximization — the paper's §VI-C use case as a user-facing pipeline.
 *
 * A marketer wants the 15 accounts whose seeding maximizes expected
 * cascade size under the Independent Cascade model, and wants to know
 * whether reordering the graph first is worth it (the paper's answer:
 * only marginally).  The example runs IMM on the natural and
 * grappolo-reordered layouts, reports seeds, throughput, and verifies
 * the seed quality with Monte-Carlo forward simulation.
 *
 * Run:  ./build/examples/influence_campaign [scale]
 */
#include <cstdio>

#include "gen/datasets.hpp"
#include "graph/permutation.hpp"
#include "influence/imm.hpp"
#include "order/scheme.hpp"

using namespace graphorder;

int
main(int argc, char** argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 64.0;
    std::printf("influence campaign on the livemocha stand-in "
                "(scale 1/%.0f), IC model p=0.1, k=15\n\n",
                scale);
    const Csr g = dataset_by_name("livemocha").make(scale);

    ImmOptions opt;
    opt.num_seeds = 15;
    opt.edge_probability = 0.1;
    opt.epsilon = 1.0;
    opt.max_samples = 20000;

    // Natural layout.
    const auto nat = imm(g, opt);
    std::printf("natural  : %6.2fs total, %8.0f RRR/s, est. spread %.0f "
                "of %u\n",
                nat.stats.total_time_s, nat.stats.sampling_throughput(),
                nat.stats.estimated_spread, g.num_vertices());

    // Grappolo-reordered layout; map the seeds back to original ids.
    const auto pi = scheme_by_name("grappolo").run(g, 3);
    const auto re = imm(apply_permutation(g, pi), opt);
    const auto inv = pi.inverse();
    std::vector<vid_t> re_seeds;
    for (vid_t s : re.seeds)
        re_seeds.push_back(inv.rank(s));
    std::printf("grappolo : %6.2fs total, %8.0f RRR/s, est. spread %.0f\n",
                re.stats.total_time_s, re.stats.sampling_throughput(),
                re.stats.estimated_spread);

    // Ground-truth check of both seed sets by forward simulation.
    const double sim_nat = simulate_ic_spread(g, nat.seeds, 0.1, 200, 9);
    const double sim_re = simulate_ic_spread(g, re_seeds, 0.1, 200, 9);
    std::printf("\nsimulated spread: natural seeds %.0f, reordered seeds "
                "%.0f (should agree closely)\n",
                sim_nat, sim_re);

    std::printf("\ncampaign seeds (original ids): ");
    for (vid_t s : nat.seeds)
        std::printf("%u ", s);
    std::printf("\n\nExpected shape (paper Fig. 11): ordering moves "
                "sampling throughput a little,\nbut total time and seed "
                "quality are essentially unchanged.\n");
    return 0;
}
