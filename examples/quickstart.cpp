/**
 * @file
 * Quickstart: build a graph, reorder it, and see what the reordering did.
 *
 * Demonstrates the 4-step core workflow of the library:
 *   1. obtain a graph (here: a synthetic community graph; swap in
 *      load_edge_list(path) for your own data),
 *   2. pick an ordering scheme from the registry,
 *   3. measure the ordering with the paper's gap metrics,
 *   4. apply the permutation to get a relabeled CSR for your computation.
 *
 * Run:  ./build/examples/quickstart [edge-list-file]
 */
#include <cstdio>

#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "la/gap_measures.hpp"
#include "order/scheme.hpp"
#include "util/table.hpp"

using namespace graphorder;

int
main(int argc, char** argv)
{
    // 1. Obtain a graph.
    Csr g;
    if (argc > 1) {
        std::printf("loading edge list %s\n", argv[1]);
        g = load_edge_list(argv[1]);
    } else {
        std::printf("no input file given; generating a community graph\n");
        g = gen_sbm(/*num_vertices=*/5000, /*target_edges=*/40000,
                    /*num_blocks=*/25, /*intra=*/0.85, /*seed=*/1);
    }
    const auto stats = compute_stats(g, /*with_triangles=*/false);
    std::printf("graph: %s\n\n", to_string(stats).c_str());

    // 2-3. Try every scheme in the paper's roster and measure it.
    Table t("gap metrics per ordering scheme (lower is better)");
    t.header({"scheme", "category", "avg gap", "bandwidth",
              "avg bandwidth", "log gap"});
    for (const auto& scheme : paper_schemes()) {
        const Permutation pi = scheme.run(g, /*seed=*/42);
        const GapMetrics m = compute_gap_metrics(g, pi);
        t.row({scheme.name, category_name(scheme.category),
               Table::num(m.avg_gap, 1),
               Table::num(std::uint64_t{m.bandwidth}),
               Table::num(m.avg_bandwidth, 1), Table::num(m.log_gap, 2)});
    }
    t.print();

    // 4. Apply the best scheme for average gap and hand the relabeled
    //    graph to the computation of your choice.
    const Permutation pi = scheme_by_name("grappolo").run(g, 42);
    const Csr reordered = apply_permutation(g, pi);
    std::printf("reordered graph ready: %u vertices, %llu edges; vertex 0 "
                "is old vertex %u\n",
                reordered.num_vertices(),
                static_cast<unsigned long long>(reordered.num_edges()),
                pi.order()[0]);
    return 0;
}
