/**
 * @file
 * Scenario: accelerating an iterative ranking service — the prototypical
 * use case of the lightweight-reordering literature the paper builds on
 * (Balaji & Lucia 2018; Wei et al. 2016).
 *
 * A service recomputes PageRank over a social graph on every refresh and
 * wants to know (a) whether the graph is *amenable* to cheap reordering
 * (packing factor), (b) which scheme to use, and (c) what it buys in
 * iteration time and simulated memory behaviour.
 *
 * Run:  ./build/examples/pagerank_speedup [scale]
 */
#include <cstdio>

#include "gen/datasets.hpp"
#include "graph/permutation.hpp"
#include "kernels/packing.hpp"
#include "kernels/pagerank.hpp"
#include "memsim/cache.hpp"
#include "order/scheme.hpp"
#include "util/table.hpp"

using namespace graphorder;

int
main(int argc, char** argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 64.0;
    std::printf("PageRank acceleration study on the skitter stand-in "
                "(scale 1/%.0f)\n\n",
                scale);
    const Csr g = dataset_by_name("skitter").make(scale);

    // (a) Amenability: packing factor of the natural layout.
    const auto natural_pack =
        packing_analysis(g, Permutation::identity(g.num_vertices()));
    std::printf("natural-layout packing factor: %.1f (hubs carry %.0f%% "
                "of traffic)\n",
                natural_pack.packing_factor,
                100.0 * natural_pack.hub_arc_fraction);
    std::printf("rule of thumb: factor >> 1 with hot hubs => lightweight "
                "reordering should pay.\n\n");

    // (b)+(c): sweep candidate schemes.
    const auto cache_cfg =
        CacheHierarchyConfig::cascade_lake_scaled(scale / 4.0);
    Table t("PageRank under candidate orderings");
    t.header({"scheme", "iter time (s)", "iters", "sim latency (cyc)",
              "packing"});
    for (const char* name :
         {"natural", "degree", "hubsort", "hubcluster", "grappolo",
          "rcm"}) {
        const auto pi = scheme_by_name(name).run(g, 11);
        const auto h = apply_permutation(g, pi);

        const auto pr = pagerank(h);
        CacheTracer tracer(cache_cfg);
        PageRankOptions traced;
        traced.tracer = &tracer;
        traced.max_iterations = 3;
        pagerank(h, traced);

        const auto pack = packing_analysis(g, pi);
        t.row({name, Table::num(pr.time_per_iteration_s(), 5),
               Table::num(std::uint64_t(pr.iterations)),
               Table::num(tracer.metrics().avg_load_latency(), 1),
               Table::num(pack.packing_factor, 1)});
    }
    t.print();
    std::printf("reading: community/degree schemes drop the pull loop's "
                "simulated latency;\niteration count is "
                "ordering-invariant (same math, same tolerance).\n");
    return 0;
}
