/**
 * @file
 * Scenario: preparing a sparse matrix for a banded direct solver — the
 * classic fill-reducing use of vertex reordering (paper §III-E).
 *
 * An engineer has a finite-element mesh whose stiffness matrix will be
 * factorized with a banded Cholesky solver: the cost is O(n * beta^2), so
 * the graph bandwidth beta is the number to minimize.  The example
 * compares RCM (the bandwidth specialist), nested dissection, and the
 * community schemes, reports beta and the implied banded-storage size,
 * and shows why the paper finds RCM the clear winner on this metric.
 *
 * Run:  ./build/examples/sparse_solver_prep
 */
#include <cstdio>

#include "gen/datasets.hpp"
#include "la/gap_measures.hpp"
#include "order/scheme.hpp"
#include "util/table.hpp"

using namespace graphorder;

int
main()
{
    std::printf("bandwidth reduction for banded factorization on the "
                "delaunay_n14 mesh stand-in\n\n");
    const Csr g = dataset_by_name("delaunay_n14").make(1.0);
    const double n = g.num_vertices();

    Table t("ordering choices for a banded solver");
    t.header({"scheme", "beta (bandwidth)", "banded storage (MB, "
              "8B/entry)", "est. factor flops (n*beta^2)"});
    double best_beta = 1e300;
    std::string best;
    for (const char* name :
         {"natural", "random", "rcm", "nd", "metis-32", "grappolo-rcm",
          "degree"}) {
        const auto pi = scheme_by_name(name).run(g, 5);
        const auto m = compute_gap_metrics(g, pi);
        const double beta = m.bandwidth;
        t.row({name, Table::num(std::uint64_t{m.bandwidth}),
               Table::num(n * beta * 8 / 1e6, 1),
               Table::num(n * beta * beta, 0)});
        if (beta < best_beta) {
            best_beta = beta;
            best = name;
        }
    }
    t.print();
    std::printf("winner: %s (paper Fig. 6a: RCM clearly outperforms all "
                "other schemes on beta)\n",
                best.c_str());
    return 0;
}
